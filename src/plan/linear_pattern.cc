#include "src/plan/linear_pattern.h"

#include <algorithm>

namespace hamlet {

int LinearPattern::PositionOf(TypeId type) const {
  for (int i = 0; i < num_positions(); ++i) {
    if (elements[static_cast<size_t>(i)].type == type) return i;
  }
  return -1;
}

bool LinearPattern::IsNegated(TypeId type) const {
  return std::any_of(negations.begin(), negations.end(),
                     [&](const NegationMark& n) { return n.type == type; });
}

std::vector<TypeId> LinearPattern::AllTypes() const {
  std::vector<TypeId> out;
  for (const SeqElement& e : elements) out.push_back(e.type);
  for (const NegationMark& n : negations) {
    if (std::find(out.begin(), out.end(), n.type) == out.end())
      out.push_back(n.type);
  }
  return out;
}

std::string LinearPattern::ToString(const Schema& schema) const {
  std::string out;
  if (group_kleene) out += "(";
  out += "SEQ(";
  // Interleave negations at their boundaries.
  auto emit_negs = [&](int boundary, bool* first) {
    for (const NegationMark& n : negations) {
      if (n.after_position == boundary) {
        if (!*first) out += ", ";
        out += "NOT " + schema.TypeName(n.type);
        *first = false;
      }
    }
  };
  bool first = true;
  emit_negs(-1, &first);
  for (int i = 0; i < num_positions(); ++i) {
    if (!first) out += ", ";
    first = false;
    const SeqElement& e = elements[static_cast<size_t>(i)];
    out += schema.TypeName(e.type);
    if (e.kleene) out += "+";
    emit_negs(i, &first);
  }
  out += ")";
  if (group_kleene) out += ")+";
  return out;
}

namespace {

// Flattens `p` (which must be below any top-level OR/AND) into `out`.
// `boundary` tracks the index of the last emitted positive position.
Status FlattenInto(const Pattern& p, LinearPattern* out) {
  switch (p.kind) {
    case PatternKind::kType:
      out->elements.push_back({p.type, /*kleene=*/false});
      return Status::Ok();
    case PatternKind::kKleene: {
      const Pattern& inner = p.children[0];
      if (inner.kind == PatternKind::kType) {
        out->elements.push_back({inner.type, /*kleene=*/true});
        return Status::Ok();
      }
      return Status::Unsupported(
          "nested Kleene is only supported at the top level: " + p.ToString());
    }
    case PatternKind::kNot: {
      const Pattern& inner = p.children[0];
      if (inner.kind != PatternKind::kType)
        return Status::Unsupported("NOT applies to a single event type");
      out->negations.push_back(
          {inner.type, static_cast<int>(out->elements.size()) - 1});
      return Status::Ok();
    }
    case PatternKind::kSeq: {
      for (const Pattern& c : p.children) {
        Status s = FlattenInto(c, out);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
    case PatternKind::kOr:
    case PatternKind::kAnd:
      return Status::Unsupported(
          "OR/AND are only supported at the top level of a pattern");
  }
  return Status::Internal("unreachable pattern kind");
}

Result<LinearPattern> CompileBranch(const Pattern& p) {
  LinearPattern out;
  const Pattern* body = &p;
  // Top-level group Kleene: (SEQ(...))+ or (E)+ — the latter is just E+.
  if (p.kind == PatternKind::kKleene &&
      p.children[0].kind != PatternKind::kType) {
    out.group_kleene = true;
    body = &p.children[0];
  }
  Status s = FlattenInto(*body, &out);
  if (!s.ok()) return s;
  if (out.elements.empty())
    return Status::InvalidArgument("pattern has no positive positions");
  // Paper assumption: each event type occurs once per pattern (merged
  // templates represent each type by a single state).
  std::vector<TypeId> seen = out.AllTypes();
  std::sort(seen.begin(), seen.end());
  if (std::adjacent_find(seen.begin(), seen.end()) != seen.end())
    return Status::Unsupported(
        "each event type may occur at most once per pattern");
  if (out.group_kleene && !out.negations.empty())
    return Status::Unsupported("negation inside a group Kleene");
  return out;
}

bool SameTypeSetDisjoint(const LinearPattern& a, const LinearPattern& b,
                         bool* disjoint) {
  std::vector<TypeId> ta = a.AllTypes();
  std::vector<TypeId> tb = b.AllTypes();
  *disjoint = true;
  for (TypeId t : ta) {
    if (std::find(tb.begin(), tb.end(), t) != tb.end()) {
      *disjoint = false;
      break;
    }
  }
  return true;
}

bool BranchesIdentical(const LinearPattern& a, const LinearPattern& b) {
  if (a.group_kleene != b.group_kleene) return false;
  if (a.elements.size() != b.elements.size()) return false;
  for (size_t i = 0; i < a.elements.size(); ++i) {
    if (a.elements[i].type != b.elements[i].type ||
        a.elements[i].kleene != b.elements[i].kleene)
      return false;
  }
  if (a.negations.size() != b.negations.size()) return false;
  for (size_t i = 0; i < a.negations.size(); ++i) {
    if (a.negations[i].type != b.negations[i].type ||
        a.negations[i].after_position != b.negations[i].after_position)
      return false;
  }
  return true;
}

}  // namespace

Result<CompiledPattern> CompilePattern(const Pattern& pattern,
                                       const Schema& schema) {
  (void)schema;
  CompiledPattern out;
  if (pattern.kind == PatternKind::kOr || pattern.kind == PatternKind::kAnd) {
    out.composition = pattern.kind == PatternKind::kOr ? CompositionKind::kOr
                                                       : CompositionKind::kAnd;
    for (const Pattern& child : pattern.children) {
      if (child.kind == PatternKind::kOr || child.kind == PatternKind::kAnd)
        return Status::Unsupported("nested OR/AND composition");
      Result<LinearPattern> branch = CompileBranch(child);
      if (!branch.ok()) return branch.status();
      out.branches.push_back(branch.value());
    }
    out.branches_identical =
        BranchesIdentical(out.branches[0], out.branches[1]);
    if (!out.branches_identical) {
      bool disjoint = false;
      SameTypeSetDisjoint(out.branches[0], out.branches[1], &disjoint);
      if (!disjoint)
        return Status::Unsupported(
            "OR/AND branches must have disjoint type sets or be identical "
            "(general trend overlap C1,2 is not computable compositionally)");
    }
    return out;
  }
  Result<LinearPattern> branch = CompileBranch(pattern);
  if (!branch.ok()) return branch.status();
  out.branches.push_back(branch.value());
  return out;
}

}  // namespace hamlet
