#include "src/plan/template_info.h"

#include <algorithm>

namespace hamlet {

TemplateInfo BuildTemplate(const LinearPattern& pattern) {
  TemplateInfo info;
  info.pattern = pattern;
  const int m = pattern.num_positions();
  info.pred_positions.resize(static_cast<size_t>(m));
  info.boundary_negations.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    auto& preds = info.pred_positions[static_cast<size_t>(i)];
    if (i > 0) preds.push_back(i - 1);
    if (pattern.elements[static_cast<size_t>(i)].kleene) preds.push_back(i);
    if (i == 0 && pattern.group_kleene && m > 1) preds.push_back(m - 1);
    // Degenerate single-position group Kleene (SEQ(A))+ == A+ semantics.
    if (i == 0 && pattern.group_kleene && m == 1 &&
        !pattern.elements[0].kleene)
      preds.push_back(0);
  }
  for (const NegationMark& n : pattern.negations) {
    if (n.after_position < 0) {
      info.leading_negations.push_back(n.type);
    } else if (n.after_position >= m - 1) {
      info.trailing_negations.push_back(n.type);
    } else {
      info.boundary_negations[static_cast<size_t>(n.after_position + 1)]
          .push_back(n.type);
    }
  }
  return info;
}

std::vector<TypeId> TemplateInfo::PredTypesOf(int position) const {
  std::vector<TypeId> out;
  for (int p : pred_positions[static_cast<size_t>(position)]) {
    TypeId t = pattern.elements[static_cast<size_t>(p)].type;
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

bool TemplateInfo::BoundaryBlockedBy(int position, TypeId neg) const {
  const auto& negs = boundary_negations[static_cast<size_t>(position)];
  return std::find(negs.begin(), negs.end(), neg) != negs.end();
}

std::string TemplateInfo::ToString(const Schema& schema) const {
  std::string out = pattern.ToString(schema) + " [";
  for (int i = 0; i < pattern.num_positions(); ++i) {
    if (i) out += "; ";
    out += schema.TypeName(pattern.elements[static_cast<size_t>(i)].type);
    out += " <- {";
    bool first = true;
    for (TypeId t : PredTypesOf(i)) {
      if (!first) out += ",";
      out += schema.TypeName(t);
      first = false;
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace hamlet
