// Workload analysis (paper §3.1): compiles a Workload into the execution
// plan the engines consume.
//
// Steps, mirroring the paper's pre-processing:
//  (1) compile each query's pattern into linear branches ("exec queries");
//  (2) build the merged workload template;
//  (3) identify shareable Kleene sub-patterns and group exec queries into
//      share groups (Definitions 4/5: shared E+, compatible aggregates, same
//      group-by, overlapping = pane-aligned windows);
//  (4) compute the pane size as the gcd of all windows and slides.
#ifndef HAMLET_PLAN_WORKLOAD_PLAN_H_
#define HAMLET_PLAN_WORKLOAD_PLAN_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/query_set.h"
#include "src/common/status.h"
#include "src/plan/merged_template.h"
#include "src/plan/template_info.h"
#include "src/query/columnar_predicate.h"
#include "src/query/query.h"

namespace hamlet {

/// How events of a shared graphlet are propagated for a share group
/// (see DESIGN.md §4). Decided statically per (type, group).
enum class PropagationMode {
  /// No edge predicates among members: snapshot compression with O(1)
  /// running sums per event. Negation is handled through per-query
  /// negation-guarded entry values; event-predicate divergence through
  /// inline event-level snapshots (Algorithm 1, lines 19-20).
  kFastSum,
  /// Identical edge predicates across members: same-type predecessor
  /// validity is query-agnostic, so ONE stored-node scan per event serves
  /// every sharer (symbolic sum of node expressions); per-query cross-type
  /// contributions ride a per-event snapshot variable. O(n) per event once,
  /// versus GRETA's O(n) per event per query — the Figure 9/11 win under
  /// the paper's workload-1 predicates.
  kSharedScan,
  /// Divergent edge predicates: predecessor validity is per-(query, event),
  /// so every event becomes an event-level snapshot valued per (query,
  /// window) by scanning stored nodes — the Definition 9 fallback.
  /// Expensive; the dynamic optimizer usually splits such bursts.
  kPerEventSnapshot,
};

const char* PropagationModeName(PropagationMode mode);

/// One engine-level query: a (source query, branch) pair with resolved
/// template and clauses. QuerySet bits index exec queries.
struct ExecQuery {
  int exec_id = -1;
  QueryId source = -1;
  int branch = 0;
  TemplateInfo tmpl;
  AggregateSpec aggregate;
  std::vector<EventPredicate> event_predicates;
  std::vector<EdgePredicate> edge_predicates;
  AttrId group_by = Schema::kInvalidId;
  WindowSpec window;

  bool has_edge_predicates() const { return !edge_predicates.empty(); }
  bool has_negations() const { return !tmpl.pattern.negations.empty(); }
};

/// A set of exec queries that may share the propagation of graphlets of
/// `type` (the shareable Kleene sub-pattern E+).
struct ShareGroup {
  TypeId type = Schema::kInvalidId;
  QuerySet members;
  PropagationMode mode = PropagationMode::kFastSum;
};

/// How a source query's branch results combine into its final value.
struct CompositionRule {
  CompositionKind kind = CompositionKind::kSingle;
  std::vector<int> exec_ids;  ///< branch exec queries, in order
  bool branches_identical = false;
};

/// Complete compiled plan for a workload.
struct WorkloadPlan {
  const Workload* workload = nullptr;
  std::vector<ExecQuery> exec_queries;
  std::vector<CompositionRule> compositions;  ///< indexed by QueryId
  MergedTemplate merged;
  std::vector<ShareGroup> share_groups;
  /// gcd over all windows and slides; every window boundary falls on a pane
  /// boundary (paper §3.1's pane partitioning).
  Timestamp pane_size = 0;

  int num_exec() const { return static_cast<int>(exec_queries.size()); }

  /// All exec query ids as a QuerySet.
  QuerySet AllExec() const { return QuerySet::FirstN(num_exec()); }

  /// Exec queries whose patterns contain `type` positively.
  QuerySet QueriesWithType(TypeId type) const;
  /// Exec queries for which `type` occurs negated.
  QuerySet QueriesWithNegatedType(TypeId type) const;
  /// The share group for `type` containing `exec_id`, or nullptr.
  const ShareGroup* GroupOf(TypeId type, int exec_id) const;

  /// Analysis summary for logs/examples.
  std::string Describe() const;
};

/// Runs the full workload analysis. The workload must outlive the plan.
Result<WorkloadPlan> AnalyzeWorkload(const Workload& workload);

/// One online-optimizer decision for one share group: keep only `shared`
/// of the group identified by (type, original_members) sharing; the rest
/// run solo. Applied by RestrictShareGroups when a session hot-swaps its
/// plan (src/optimizer/online_optimizer.h derives these from live burst
/// statistics).
struct SharingOverride {
  TypeId type = Schema::kInvalidId;
  /// The group as AnalyzeWorkload built it — identifies the group, since a
  /// type may partition into several groups (aggregate compatibility is
  /// not transitive).
  QuerySet original_members;
  /// The members that keep sharing; must be a subset of original_members.
  QuerySet shared;
};

/// Applies overrides to a freshly analyzed plan: each matched share group's
/// membership shrinks to override.shared (intersected with the original
/// members); groups left with < 2 members are removed, and their mode is
/// re-decided for the survivors. Unmatched overrides are ignored — the
/// query set may have churned between the decision and the swap.
void RestrictShareGroups(WorkloadPlan& plan,
                         std::span<const SharingOverride> overrides);

/// Combines branch values into the source query's value (paper §5's count
/// composition; branch_values parallels rule.exec_ids).
double ComposeQueryValue(const CompositionRule& rule,
                         const std::vector<double>& branch_values);

/// gcd helper exposed for tests.
Timestamp PaneGcd(const std::vector<WindowSpec>& windows);

/// Compiles the plan's per-exec-query event predicates into a columnar
/// PredicateProgram (src/query/columnar_predicate.h). Called at
/// Session::Open; fails with kInvalidArgument when a predicate's type or
/// attribute never resolved against the schema.
Result<PredicateProgram> CompilePredicateProgram(const WorkloadPlan& plan);

}  // namespace hamlet

#endif  // HAMLET_PLAN_WORKLOAD_PLAN_H_
