// Normalization of Pattern ASTs into the linear form the engines execute.
//
// Engines evaluate *linear* Kleene patterns: an ordered list of positive
// positions (each a type, optionally Kleene-starred), negation marks between
// positions, and an optional whole-pattern Kleene loop (paper §5, nested
// Kleene). OR/AND composition is handled above the engines by count
// composition (§5), so a general query compiles into one or more linear
// branches plus a composition rule.
#ifndef HAMLET_PLAN_LINEAR_PATTERN_H_
#define HAMLET_PLAN_LINEAR_PATTERN_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/query/pattern.h"

namespace hamlet {

/// One positive position of a linear pattern.
struct SeqElement {
  TypeId type = Schema::kInvalidId;
  bool kleene = false;  ///< E+
};

/// A negation: "no event of `type` may occur strictly between the trend
/// events adjacent to this boundary".
/// `after_position == -1`  -> leading NOT (no N before the trend's first
///                            event, from window start);
/// `after_position == m-1` -> trailing NOT (no N after the trend's last
///                            event, to window end);
/// otherwise the boundary between positions after_position and
/// after_position+1.
struct NegationMark {
  TypeId type = Schema::kInvalidId;
  int after_position = -1;
};

/// SEQ-normal form of a (branch of a) Kleene pattern.
struct LinearPattern {
  std::vector<SeqElement> elements;     ///< positive positions, in order
  std::vector<NegationMark> negations;  ///< between-position negations
  /// Whole-sequence Kleene: (SEQ(...))+ adds the loop last->first
  /// (paper Example 10).
  bool group_kleene = false;

  int num_positions() const { return static_cast<int>(elements.size()); }

  /// Position of `type` among the positive elements, or -1.
  int PositionOf(TypeId type) const;

  /// True when `type` occurs negated.
  bool IsNegated(TypeId type) const;

  /// All types (positive then negated), each once.
  std::vector<TypeId> AllTypes() const;

  std::string ToString(const Schema& schema) const;
};

/// How a query combines its linear branches (paper §5).
enum class CompositionKind {
  kSingle,  ///< one branch
  kOr,      ///< COUNT(P1 OR P2) = C1 + C2 + C1,2
  kAnd,     ///< COUNT(P1 AND P2) = C1*C2 + C1*C12 + C2*C12 + C(C12,2)
};

/// A compiled pattern: branches plus composition. The supported OR/AND
/// composition requires branches over disjoint type sets (then C1,2 = 0) or
/// identical branches (then C1,2 = C1 = C2); the general overlap case is
/// rejected as unsupported (documented in DESIGN.md).
struct CompiledPattern {
  CompositionKind composition = CompositionKind::kSingle;
  std::vector<LinearPattern> branches;
  /// True when the two branches match exactly the same trends.
  bool branches_identical = false;
};

/// Lowers a resolved Pattern into CompiledPattern. Enforces the paper's
/// structural assumptions: every event type occurs at most once per branch,
/// at least one positive position, OR/AND only at the top level.
Result<CompiledPattern> CompilePattern(const Pattern& pattern,
                                       const Schema& schema);

}  // namespace hamlet

#endif  // HAMLET_PLAN_LINEAR_PATTERN_H_
