#include "src/plan/workload_plan.h"

#include <algorithm>
#include <numeric>

namespace hamlet {

const char* PropagationModeName(PropagationMode mode) {
  switch (mode) {
    case PropagationMode::kFastSum:
      return "fast_sum";
    case PropagationMode::kSharedScan:
      return "shared_scan";
    case PropagationMode::kPerEventSnapshot:
      return "per_event_snapshot";
  }
  return "?";
}

QuerySet WorkloadPlan::QueriesWithType(TypeId type) const {
  QuerySet out;
  for (const ExecQuery& eq : exec_queries) {
    if (eq.tmpl.pattern.PositionOf(type) >= 0) out.Insert(eq.exec_id);
  }
  return out;
}

QuerySet WorkloadPlan::QueriesWithNegatedType(TypeId type) const {
  QuerySet out;
  for (const ExecQuery& eq : exec_queries) {
    if (eq.tmpl.pattern.IsNegated(type)) out.Insert(eq.exec_id);
  }
  return out;
}

const ShareGroup* WorkloadPlan::GroupOf(TypeId type, int exec_id) const {
  for (const ShareGroup& g : share_groups) {
    if (g.type == type && g.members.Contains(exec_id)) return &g;
  }
  return nullptr;
}

std::string WorkloadPlan::Describe() const {
  const Schema& schema = *workload->schema();
  std::string out = "WorkloadPlan: " + std::to_string(num_exec()) +
                    " exec queries, pane=" + std::to_string(pane_size) +
                    "ms\n";
  for (const ExecQuery& eq : exec_queries) {
    out += "  e" + std::to_string(eq.exec_id) + " (" +
           workload->query(eq.source).name + "#" + std::to_string(eq.branch) +
           "): " + eq.tmpl.pattern.ToString(schema) + " " +
           eq.aggregate.ToString() + "\n";
  }
  for (const ShareGroup& g : share_groups) {
    out += "  share " + schema.TypeName(g.type) + "+ by " +
           g.members.ToString() + " mode=" + PropagationModeName(g.mode) +
           "\n";
  }
  return out;
}

double ComposeQueryValue(const CompositionRule& rule,
                         const std::vector<double>& branch_values) {
  switch (rule.kind) {
    case CompositionKind::kSingle:
      return branch_values[0];
    case CompositionKind::kOr:
      // COUNT(P1 v P2) = C1' + C2' + C12. Identical branches: C12 = C1;
      // disjoint type sets: C12 = 0 (both checked at compile time).
      if (rule.branches_identical) return branch_values[0];
      return branch_values[0] + branch_values[1];
    case CompositionKind::kAnd:
      if (rule.branches_identical) {
        // All trends shared: C(C12, 2) unordered distinct pairs.
        return branch_values[0] * (branch_values[0] - 1.0) / 2.0;
      }
      return branch_values[0] * branch_values[1];
  }
  return 0.0;
}

Timestamp PaneGcd(const std::vector<WindowSpec>& windows) {
  Timestamp g = 0;
  for (const WindowSpec& w : windows) {
    g = std::gcd(g, w.within);
    g = std::gcd(g, w.slide);
  }
  return g;
}

namespace {

// Pairwise sharability of two exec queries w.r.t. Kleene type `type`
// (Definition 5): both have E+ (checked by the caller), aggregates
// shareable, same group-by attribute. Window overlap is guaranteed by the
// pane alignment enforced in Query::Resolve.
bool PairShareable(const ExecQuery& a, const ExecQuery& b) {
  if (a.group_by != b.group_by) return false;
  if (!AggregatesShareable(a.aggregate, b.aggregate)) return false;
  return true;
}

PropagationMode DecideMode(const std::vector<ExecQuery>& eqs,
                           const QuerySet& members) {
  bool any_edge = false;
  bool edges_identical = true;
  const ExecQuery* first = nullptr;
  members.ForEach([&](QueryId id) {
    const ExecQuery& eq = eqs[static_cast<size_t>(id)];
    if (first == nullptr) first = &eq;
    any_edge |= eq.has_edge_predicates();
    if (!(eq.edge_predicates == first->edge_predicates))
      edges_identical = false;
  });
  if (!any_edge) return PropagationMode::kFastSum;
  if (edges_identical) return PropagationMode::kSharedScan;
  return PropagationMode::kPerEventSnapshot;
}

}  // namespace

Result<WorkloadPlan> AnalyzeWorkload(const Workload& workload) {
  WorkloadPlan plan;
  plan.workload = &workload;

  // (1) Compile every query into exec-query branches.
  for (QueryId qid = 0; qid < workload.size(); ++qid) {
    const Query& q = workload.query(qid);
    Result<CompiledPattern> compiled =
        CompilePattern(q.pattern, *workload.schema());
    if (!compiled.ok()) return compiled.status();
    if (compiled->composition != CompositionKind::kSingle &&
        q.aggregate.kind != AggKind::kCountTrends) {
      return Status::Unsupported(
          "OR/AND composition is only supported for COUNT(*) (paper §5 "
          "defines count composition)");
    }
    CompositionRule rule;
    rule.kind = compiled->composition;
    rule.branches_identical = compiled->branches_identical;
    for (size_t b = 0; b < compiled->branches.size(); ++b) {
      if (plan.num_exec() >= QuerySet::kMaxQueries)
        return Status::ResourceExhausted("too many exec queries");
      ExecQuery eq;
      eq.exec_id = plan.num_exec();
      eq.source = qid;
      eq.branch = static_cast<int>(b);
      eq.tmpl = BuildTemplate(compiled->branches[b]);
      eq.aggregate = q.aggregate;
      eq.event_predicates = q.event_predicates;
      eq.edge_predicates = q.edge_predicates;
      eq.group_by = q.group_by;
      eq.window = q.window;
      rule.exec_ids.push_back(eq.exec_id);
      // The aggregate's target type must appear in the branch, otherwise the
      // per-branch result is trivially empty for COUNT(E)-family aggregates;
      // allow it (disjoint OR branches legitimately hit one side only).
      plan.exec_queries.push_back(std::move(eq));
    }
    plan.compositions.push_back(std::move(rule));
  }

  // (2) Merged template.
  for (const ExecQuery& eq : plan.exec_queries)
    plan.merged.AddQuery(eq.exec_id, eq.tmpl);

  // (3) Share groups per shareable Kleene type: greedily partition the
  // Kleene queries of E into mutually shareable groups (aggregate
  // compatibility is not transitive, e.g. AVG(E.a)~COUNT(E)~AVG(E.b)).
  for (TypeId type : plan.merged.ShareableKleeneTypes()) {
    QuerySet kleene_queries = plan.merged.KleeneQueriesOf(type);
    std::vector<QuerySet> groups;
    kleene_queries.ForEach([&](QueryId id) {
      const ExecQuery& eq = plan.exec_queries[static_cast<size_t>(id)];
      for (QuerySet& g : groups) {
        bool compatible = true;
        g.ForEach([&](QueryId other) {
          if (!PairShareable(eq,
                             plan.exec_queries[static_cast<size_t>(other)]))
            compatible = false;
        });
        if (compatible) {
          g.Insert(id);
          return;
        }
      }
      groups.push_back(QuerySet::Single(id));
    });
    for (const QuerySet& g : groups) {
      if (g.Count() < 2) continue;  // nothing to share
      ShareGroup sg;
      sg.type = type;
      sg.members = g;
      sg.mode = DecideMode(plan.exec_queries, g);
      plan.share_groups.push_back(sg);
    }
  }

  // (4) Pane size.
  std::vector<WindowSpec> windows;
  for (const ExecQuery& eq : plan.exec_queries) windows.push_back(eq.window);
  plan.pane_size = PaneGcd(windows);
  if (plan.pane_size <= 0)
    return Status::InvalidArgument("workload is empty or has zero windows");
  return plan;
}

void RestrictShareGroups(WorkloadPlan& plan,
                         std::span<const SharingOverride> overrides) {
  for (const SharingOverride& ov : overrides) {
    for (size_t i = 0; i < plan.share_groups.size(); ++i) {
      ShareGroup& g = plan.share_groups[i];
      if (g.type != ov.type || g.members != ov.original_members) continue;
      const QuerySet kept = ov.shared.Intersect(g.members);
      if (kept.Count() < 2) {
        plan.share_groups.erase(plan.share_groups.begin() +
                                static_cast<std::ptrdiff_t>(i));
      } else {
        g.members = kept;
        g.mode = DecideMode(plan.exec_queries, kept);
      }
      break;
    }
  }
}

Result<PredicateProgram> CompilePredicateProgram(const WorkloadPlan& plan) {
  std::vector<PredicateList> lists;
  lists.reserve(plan.exec_queries.size());
  for (const ExecQuery& eq : plan.exec_queries) {
    PredicateList list;
    list.exec_id = eq.exec_id;
    list.preds = &eq.event_predicates;
    lists.push_back(list);
  }
  return PredicateProgram::Compile(*plan.workload->schema(), lists);
}

}  // namespace hamlet
