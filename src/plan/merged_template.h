// Merged workload template (paper §3.1, Fig. 3(b) and Fig. 8).
//
// One state per event type across the whole workload; each transition is
// labeled with the set of (exec-)queries it holds for. Kleene self-loop
// transitions shared by more than one query are the shareable Kleene
// sub-patterns (Definition 4).
#ifndef HAMLET_PLAN_MERGED_TEMPLATE_H_
#define HAMLET_PLAN_MERGED_TEMPLATE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/query_set.h"
#include "src/plan/template_info.h"

namespace hamlet {

/// The merged FSA over all exec queries of a workload.
class MergedTemplate {
 public:
  /// Adds one query's template under id `exec_id`.
  void AddQuery(int exec_id, const TemplateInfo& info);

  /// Queries whose trends may step from `from` to `to`.
  QuerySet TransitionLabel(TypeId from, TypeId to) const;

  /// Queries containing the Kleene sub-pattern E+ (the self-loop label).
  QuerySet KleeneQueriesOf(TypeId type) const;

  /// All types with a Kleene self-loop labeled by >= 2 queries
  /// (Definition 4's shareable Kleene sub-patterns).
  std::vector<TypeId> ShareableKleeneTypes() const;

  /// All (from, to) transitions.
  const std::map<std::pair<TypeId, TypeId>, QuerySet>& transitions() const {
    return transitions_;
  }

  /// Human-readable dump, one transition per line.
  std::string ToString(const Schema& schema) const;

  /// Graphviz rendering (used by examples/docs).
  std::string ToDot(const Schema& schema) const;

 private:
  std::map<std::pair<TypeId, TypeId>, QuerySet> transitions_;
};

}  // namespace hamlet

#endif  // HAMLET_PLAN_MERGED_TEMPLATE_H_
