#include "src/plan/merged_template.h"

namespace hamlet {

void MergedTemplate::AddQuery(int exec_id, const TemplateInfo& info) {
  const LinearPattern& p = info.pattern;
  for (int i = 0; i < p.num_positions(); ++i) {
    TypeId to = p.elements[static_cast<size_t>(i)].type;
    for (int pred : info.pred_positions[static_cast<size_t>(i)]) {
      TypeId from = p.elements[static_cast<size_t>(pred)].type;
      transitions_[{from, to}].Insert(exec_id);
    }
  }
}

QuerySet MergedTemplate::TransitionLabel(TypeId from, TypeId to) const {
  auto it = transitions_.find({from, to});
  return it == transitions_.end() ? QuerySet() : it->second;
}

QuerySet MergedTemplate::KleeneQueriesOf(TypeId type) const {
  return TransitionLabel(type, type);
}

std::vector<TypeId> MergedTemplate::ShareableKleeneTypes() const {
  std::vector<TypeId> out;
  for (const auto& [edge, label] : transitions_) {
    if (edge.first == edge.second && label.Count() >= 2)
      out.push_back(edge.first);
  }
  return out;
}

std::string MergedTemplate::ToString(const Schema& schema) const {
  std::string out;
  for (const auto& [edge, label] : transitions_) {
    out += schema.TypeName(edge.first) + " -> " + schema.TypeName(edge.second) +
           " " + label.ToString() + "\n";
  }
  return out;
}

std::string MergedTemplate::ToDot(const Schema& schema) const {
  std::string out = "digraph merged_template {\n  rankdir=LR;\n";
  for (const auto& [edge, label] : transitions_) {
    out += "  \"" + schema.TypeName(edge.first) + "\" -> \"" +
           schema.TypeName(edge.second) + "\" [label=\"" + label.ToString() +
           "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace hamlet
