// Per-query template (paper §3.1, Fig. 3): the FSA view of a linear pattern.
//
// States are event types; transitions say which types may precede which in a
// trend. The engines consume the derived navigation tables: predecessor
// positions `pred_positions`, predecessor types `pt(E,q)`, start/end types,
// and negation boundary marks.
#ifndef HAMLET_PLAN_TEMPLATE_INFO_H_
#define HAMLET_PLAN_TEMPLATE_INFO_H_

#include <string>
#include <vector>

#include "src/plan/linear_pattern.h"

namespace hamlet {

/// Navigation tables derived from a LinearPattern.
struct TemplateInfo {
  LinearPattern pattern;

  /// pred_positions[i] = positions whose events may directly precede an
  /// event at position i (paper's pt(E,q) in position space): i-1 (chain),
  /// i (Kleene self-loop), and m-1 for i==0 under a group Kleene.
  std::vector<std::vector<int>> pred_positions;

  /// boundary_negations[i] = negated types that block the chain edge
  /// (i-1 -> i); empty for i==0.
  std::vector<std::vector<TypeId>> boundary_negations;

  /// Leading NOT types: no such event may precede the trend's first event
  /// (from window start).
  std::vector<TypeId> leading_negations;
  /// Trailing NOT types: no such event may follow the trend's last event
  /// (to window end).
  std::vector<TypeId> trailing_negations;

  /// Start position is always 0 and end position m-1 for linear patterns.
  int start_position() const { return 0; }
  int end_position() const { return pattern.num_positions() - 1; }

  TypeId start_type() const { return pattern.elements.front().type; }
  TypeId end_type() const { return pattern.elements.back().type; }

  /// pt(E,q) as type ids for the type at position i.
  std::vector<TypeId> PredTypesOf(int position) const;

  /// True when the chain edge into `position` is blocked by negated type
  /// `neg` (used by engines when a negative match arrives).
  bool BoundaryBlockedBy(int position, TypeId neg) const;

  std::string ToString(const Schema& schema) const;
};

/// Builds the navigation tables for a linear pattern.
TemplateInfo BuildTemplate(const LinearPattern& pattern);

}  // namespace hamlet

#endif  // HAMLET_PLAN_TEMPLATE_INFO_H_
