// hamlet_lint — project-specific lint driver.
//
//   hamlet_lint --root <dir>
//
// Scans every .h/.cc under <dir> with the checks in tools/lint/lint.h and
// prints findings as `path:line: [check] message` (the format editors and
// CI annotations parse). Exit status: 0 clean, 1 findings, 2 usage/IO
// error. The MergeRunMetrics completeness check additionally needs the
// runtime/session.h + runtime/session.cc pair and is skipped (with a note)
// when the tree under --root does not contain it — fixture trees in the
// self-test, for example.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: hamlet_lint --root <dir>\n");
      return 2;
    }
  }
  if (root.empty() || !fs::is_directory(root)) {
    std::fprintf(stderr, "hamlet_lint: --root must name a directory\n");
    return 2;
  }

  // Deterministic order: collect, then sort by relative path.
  std::vector<std::string> rel_paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    rel_paths.push_back(
        fs::relative(entry.path(), root).generic_string());
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<hamlet::lint::Finding> findings;
  for (const std::string& rel : rel_paths) {
    std::string contents;
    if (!ReadFile(root / rel, &contents)) {
      std::fprintf(stderr, "hamlet_lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::vector<hamlet::lint::Finding> file_findings =
        hamlet::lint::CheckFile(rel, contents);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  const fs::path header_path = root / "runtime" / "session.h";
  const fs::path impl_path = root / "runtime" / "session.cc";
  if (fs::exists(header_path) && fs::exists(impl_path)) {
    std::string header;
    std::string impl;
    if (!ReadFile(header_path, &header) || !ReadFile(impl_path, &impl)) {
      std::fprintf(stderr, "hamlet_lint: cannot read the session pair\n");
      return 2;
    }
    std::vector<hamlet::lint::Finding> merge_findings =
        hamlet::lint::CheckMergeRunMetricsComplete(
            header, impl, "runtime/session.h", "runtime/session.cc");
    findings.insert(findings.end(), merge_findings.begin(),
                    merge_findings.end());
  } else {
    std::fprintf(stderr,
                 "hamlet_lint: note: no runtime/session.{h,cc} under root; "
                 "skipping the MergeRunMetrics completeness check\n");
  }

  for (const hamlet::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.path.c_str(), f.line,
                 f.check.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "hamlet_lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), rel_paths.size());
    return 1;
  }
  std::printf("hamlet_lint: %zu files clean\n", rel_paths.size());
  return 0;
}
