// Golden BAD fixture: raw threading primitives outside src/common/. Never
// compiled — lint_test expects CheckNoRawThreading to flag the std::mutex,
// the std::lock_guard and the std::thread, and to IGNORE the mention of
// std::condition_variable in this comment and in the string below.
#include <mutex>
#include <thread>

static std::mutex g_mu;

void Touch() {
  std::lock_guard<std::mutex> lock(g_mu);
  const char* doc = "docs may say std::condition_variable without tripping";
  (void)doc;
}

void Spawn() {
  std::thread t(Touch);
  t.join();
}
