// Golden BAD fixture, implementation half: handles every RunMetrics field
// except `late_events`. A local variable named late_events must NOT count
// as coverage (the check requires a member access).
#include "metrics.h"

void MergeRunMetrics(RunMetrics& into, const RunMetrics& from) {
  int64_t late_events = 0;  // shadows the field name; not a merge
  (void)late_events;
  into.events += from.events;
  into.emissions += from.emissions;
  if (from.elapsed_seconds > into.elapsed_seconds) {
    into.elapsed_seconds = from.elapsed_seconds;
  }
  if (into.run_len_hist.size() < from.run_len_hist.size()) {
    into.run_len_hist.resize(from.run_len_hist.size(), 0);
  }
  for (unsigned long i = 0; i < from.run_len_hist.size(); ++i) {
    into.run_len_hist[i] += from.run_len_hist[i];
  }
}
