// Golden BAD fixture: RunMetrics grew a field (`late_events`) that the
// merge below never touches. Never compiled — lint_test feeds this pair to
// CheckMergeRunMetricsComplete and expects exactly one finding.
#include <cstdint>
#include <vector>

struct RunMetrics {
  int64_t events = 0;
  int64_t emissions = 0;
  double elapsed_seconds = 0.0;
  /// Dropped-behind-watermark events — the field the merge forgot.
  int64_t late_events = 0;
  std::vector<int64_t> run_len_hist;
};

void MergeRunMetrics(RunMetrics& into, const RunMetrics& from);
