// Golden CLEAN fixture: exercises every near-miss the checks must NOT
// flag — this file passing is as much a part of the contract as the bad
// fixtures failing.
//
// Near-misses covered:
//   - std::mutex / std::thread mentioned only in comments and strings
//   - std::this_thread (prefix-shares "std::thread" textually? it must not)
//   - batch.time(0) and obj->time(0) member calls
//   - identifiers containing "rand" ("operand", "strand")
//   - a debt marker with a proper issue reference
#include <cstdint>

struct Batch {
  int64_t time(int i) const { return i; }
};

int64_t UseNearMisses(const Batch& batch, const Batch* ptr) {
  const char* doc =
      "std::mutex and std::thread belong in src/common/ wrappers; "
      "steady_clock belongs behind ClockNow";
  (void)doc;
  int64_t operand = batch.time(0);
  int64_t strand = ptr->time(1);
  // TODO(#7): fold the two accessors once the batch layout settles
  return operand + strand;
}
