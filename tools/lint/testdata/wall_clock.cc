// Golden BAD fixture: wall-clock reads and nondeterminism sources. Never
// compiled — lint_test expects findings for time(nullptr), random_device,
// steady_clock and rand(), and NO finding for the member call
// batch.time(0) or for srandom-like identifiers that merely contain "rand".
#include <chrono>
#include <ctime>
#include <random>

struct Batch {
  long time(int i) const { return i; }
};

long Sample() {
  long t = time(nullptr);
  std::random_device rd;
  t += static_cast<long>(rd());
  t += std::chrono::steady_clock::now().time_since_epoch().count();
  t += rand();
  Batch batch;
  t += batch.time(0);  // member accessor, not the libc call
  long operand = 7;    // contains "rand" but is not a call
  return t + operand;
}
