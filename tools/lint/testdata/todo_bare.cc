// Golden BAD fixture: debt markers without issue references. lint_test
// expects findings for the two bare markers below and none for the
// well-formed one carrying (#42). (This header deliberately avoids the
// marker words themselves — the check scans comments, including this one.)
int Pending() {
  // TODO: tighten this bound
  // FIXME(alice): off by one under churn?
  // TODO(#42): replace with the pane-aligned variant
  return 0;
}
