#include "tools/lint/lint.h"

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace hamlet {
namespace lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int LineOf(const std::string& text, size_t pos) {
  int line = 1;
  for (size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

/// True when the identifier starting at `pos` with length `len` has no
/// identifier character on either side.
bool IsWordAt(const std::string& text, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const size_t end = pos + len;
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

/// First non-space position at or after `pos`.
size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Position just past the brace that matches the '{' at `open`, or npos.
size_t MatchBrace(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// True when `rel_path`'s first component is `dir` (paths are '/'-separated
/// relative to the scanned root).
bool UnderDir(const std::string& rel_path, const std::string& dir) {
  return rel_path.rfind(dir + "/", 0) == 0;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  for (size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(source[i - 1]))) {
          // R"delim( ... )delim"
          size_t p = i + 2;
          while (p < source.size() && source[p] != '(') ++p;
          raw_delim = ")" + source.substr(i + 2, p - (i + 2)) + "\"";
          for (size_t j = i; j <= p && j < source.size(); ++j) out[j] = ' ';
          i = p;
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < source.size() && source[i + 1] != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < source.size() && source[i + 1] != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = 0; j < raw_delim.size(); ++j) out[i + j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> ParseRunMetricsFields(const std::string& header) {
  std::vector<std::string> fields;
  const std::string stripped = StripCommentsAndStrings(header);
  const std::string key = "struct RunMetrics";
  size_t pos = stripped.find(key);
  if (pos == std::string::npos) return fields;
  size_t open = stripped.find('{', pos + key.size());
  if (open == std::string::npos) return fields;
  const size_t close = MatchBrace(stripped, open);
  if (close == std::string::npos) return fields;

  // Split the struct body into top-level `;`-terminated declarations and
  // take the declarator name: the last identifier before `=` (initializer)
  // or before the `;`. Nested braces/parens (default member initializers
  // with braces, function declarations) are skipped at depth.
  size_t stmt_begin = open + 1;
  int depth = 0;
  bool has_call = false;
  for (size_t i = open + 1; i + 1 < close; ++i) {
    const char c = stripped[i];
    if (c == '{' || c == '(' || c == '<') ++depth;
    if (c == '}' || c == ')' || c == '>') --depth;
    if (c == '(') has_call = true;
    if (c != ';' || depth != 0) continue;

    std::string stmt = stripped.substr(stmt_begin, i - stmt_begin);
    const size_t eq = stmt.find('=');
    if (eq != std::string::npos) stmt.resize(eq);
    // A parenthesized statement with no initializer is a function
    // declaration (none inside RunMetrics today) — no field to extract.
    const bool is_function = has_call && eq == std::string::npos;
    has_call = false;
    stmt_begin = i + 1;
    if (is_function) continue;

    size_t end = stmt.size();
    while (end > 0 && !IsIdentChar(stmt[end - 1])) --end;
    size_t begin = end;
    while (begin > 0 && IsIdentChar(stmt[begin - 1])) --begin;
    if (begin == end) continue;
    const std::string name = stmt.substr(begin, end - begin);
    if (std::isdigit(static_cast<unsigned char>(name[0])) == 0) {
      fields.push_back(name);
    }
  }
  return fields;
}

std::vector<Finding> CheckMergeRunMetricsComplete(
    const std::string& header, const std::string& impl,
    const std::string& header_path, const std::string& impl_path) {
  std::vector<Finding> findings;
  const std::vector<std::string> fields = ParseRunMetricsFields(header);
  if (fields.empty()) {
    findings.push_back({header_path, 1, "merge-run-metrics",
                        "could not locate struct RunMetrics fields"});
    return findings;
  }

  const std::string stripped = StripCommentsAndStrings(impl);
  // Find the DEFINITION: "MergeRunMetrics" whose parameter list is followed
  // by '{' (the header's declaration ends in ';').
  size_t body_begin = std::string::npos;
  size_t body_end = std::string::npos;
  size_t def_pos = 0;
  for (size_t pos = stripped.find("MergeRunMetrics"); pos != std::string::npos;
       pos = stripped.find("MergeRunMetrics", pos + 1)) {
    if (!IsWordAt(stripped, pos, 15)) continue;
    size_t p = SkipSpaces(stripped, pos + 15);
    if (p >= stripped.size() || stripped[p] != '(') continue;
    int depth = 0;
    while (p < stripped.size()) {
      if (stripped[p] == '(') ++depth;
      if (stripped[p] == ')' && --depth == 0) break;
      ++p;
    }
    p = SkipSpaces(stripped, p + 1);
    if (p < stripped.size() && stripped[p] == '{') {
      body_begin = p;
      body_end = MatchBrace(stripped, p);
      def_pos = pos;
      break;
    }
  }
  if (body_begin == std::string::npos || body_end == std::string::npos) {
    findings.push_back({impl_path, 1, "merge-run-metrics",
                        "could not locate the MergeRunMetrics definition"});
    return findings;
  }

  const std::string body =
      stripped.substr(body_begin, body_end - body_begin);
  for (const std::string& field : fields) {
    // A handled field appears as a member access: `into.events`,
    // `from.run_len_hist`, `AddStats(into.hamlet, ...)`. Requiring the
    // leading '.' keeps a local variable that shadows a field name from
    // counting as coverage.
    const std::string needle = "." + field;
    bool handled = false;
    for (size_t p = body.find(needle); p != std::string::npos;
         p = body.find(needle, p + 1)) {
      const size_t end = p + needle.size();
      if (end < body.size() && IsIdentChar(body[end])) continue;
      handled = true;
      break;
    }
    if (!handled) {
      findings.push_back(
          {impl_path, LineOf(stripped, def_pos), "merge-run-metrics",
           "RunMetrics field '" + field +
               "' is never touched in MergeRunMetrics; every field needs an "
               "explicit merge rule (sum / max / recompute / concat)"});
    }
  }
  return findings;
}

std::vector<Finding> CheckNoRawThreading(const std::string& rel_path,
                                         const std::string& source) {
  std::vector<Finding> findings;
  // The wrapper layer itself necessarily names the raw types.
  if (UnderDir(rel_path, "common")) return findings;

  static const char* const kBanned[] = {
      "std::mutex",
      "std::recursive_mutex",
      "std::timed_mutex",
      "std::recursive_timed_mutex",
      "std::shared_mutex",
      "std::shared_timed_mutex",
      "std::condition_variable",
      "std::condition_variable_any",
      "std::lock_guard",
      "std::unique_lock",
      "std::scoped_lock",
      "std::shared_lock",
      "std::thread",
      "std::jthread",
  };
  const std::string stripped = StripCommentsAndStrings(source);
  for (const char* token : kBanned) {
    const std::string t(token);
    for (size_t p = stripped.find(t); p != std::string::npos;
         p = stripped.find(t, p + 1)) {
      // Word boundary on the right rejects std::condition_variable matching
      // inside std::condition_variable_any (reported once, as the longer
      // token) and any user identifier with the token as a prefix.
      const size_t end = p + t.size();
      if (end < stripped.size() && IsIdentChar(stripped[end])) continue;
      findings.push_back(
          {rel_path, LineOf(stripped, p), "raw-threading",
           t + " outside src/common/; use the annotated wrappers in "
               "src/common/mutex.h / src/common/thread.h so Clang Thread "
               "Safety Analysis sees the lock"});
    }
  }
  return findings;
}

std::vector<Finding> CheckNoWallClock(const std::string& rel_path,
                                      const std::string& source) {
  std::vector<Finding> findings;
  // runtime/session.cc defines MonotonicSeconds() — the single sanctioned
  // steady_clock read that everything else reaches through ClockNow and
  // RunConfig::clock_override.
  if (rel_path == "runtime/session.cc") return findings;

  const std::string stripped = StripCommentsAndStrings(source);

  // Clock types and stdlib RNG state: any mention is a violation.
  static const char* const kBannedWords[] = {
      "steady_clock",  "system_clock", "high_resolution_clock",
      "random_device", "mt19937",      "mt19937_64",
  };
  for (const char* token : kBannedWords) {
    const std::string t(token);
    for (size_t p = stripped.find(t); p != std::string::npos;
         p = stripped.find(t, p + 1)) {
      if (!IsWordAt(stripped, p, t.size())) continue;
      findings.push_back(
          {rel_path, LineOf(stripped, p), "nondeterminism",
           t + " outside the clock/seed plumbing; route time through "
               "ClockNow/RunConfig::clock_override and randomness through "
               "hamlet::Rng so runs replay from a seed"});
    }
  }

  // Call-shaped bans: the identifier must be a free call (not `.time(` /
  // `->time(` member calls like EventBatch::time) followed by '('.
  static const char* const kBannedCalls[] = {"rand", "srand", "time"};
  for (const char* token : kBannedCalls) {
    const std::string t(token);
    for (size_t p = stripped.find(t); p != std::string::npos;
         p = stripped.find(t, p + 1)) {
      if (!IsWordAt(stripped, p, t.size())) continue;
      const char prev = p > 0 ? stripped[p - 1] : '\0';
      if (prev == '.') continue;  // member access: batch.time(0)
      if (prev == '>' && p > 1 && stripped[p - 2] == '-') continue;  // ->
      const size_t after = SkipSpaces(stripped, p + t.size());
      if (after >= stripped.size() || stripped[after] != '(') continue;
      if (t == "time") {
        // Only the wall-clock forms: time(nullptr) / time(NULL) / time(0).
        const size_t arg = SkipSpaces(stripped, after + 1);
        const bool wall =
            stripped.compare(arg, 7, "nullptr") == 0 ||
            stripped.compare(arg, 4, "NULL") == 0 ||
            (arg < stripped.size() && stripped[arg] == '0' &&
             SkipSpaces(stripped, arg + 1) < stripped.size() &&
             stripped[SkipSpaces(stripped, arg + 1)] == ')');
        if (!wall) continue;
      }
      findings.push_back(
          {rel_path, LineOf(stripped, p), "nondeterminism",
           t + "() outside the clock/seed plumbing; route time through "
               "ClockNow/RunConfig::clock_override and randomness through "
               "hamlet::Rng so runs replay from a seed"});
    }
  }
  return findings;
}

std::vector<Finding> CheckTodoHasIssue(const std::string& rel_path,
                                       const std::string& source) {
  std::vector<Finding> findings;
  static const char* const kMarkers[] = {"TODO", "FIXME"};
  for (const char* marker : kMarkers) {
    const std::string m(marker);
    for (size_t p = source.find(m); p != std::string::npos;
         p = source.find(m, p + 1)) {
      if (!IsWordAt(source, p, m.size())) continue;
      // Accepted form: TODO(#123). Anything else — bare TODO, TODO:,
      // TODO(name) — has no queryable owner.
      size_t q = p + m.size();
      bool ok = false;
      if (q < source.size() && source[q] == '(') {
        ++q;
        if (q < source.size() && source[q] == '#') {
          ++q;
          size_t digits = 0;
          while (q < source.size() &&
                 std::isdigit(static_cast<unsigned char>(source[q])) != 0) {
            ++q;
            ++digits;
          }
          ok = digits > 0 && q < source.size() && source[q] == ')';
        }
      }
      if (!ok) {
        findings.push_back({rel_path, LineOf(source, p), "todo-without-issue",
                            m + " without an issue reference; write " + m +
                                "(#<issue>) so the debt is queryable"});
      }
    }
  }
  return findings;
}

std::vector<Finding> CheckFile(const std::string& rel_path,
                               const std::string& source) {
  std::vector<Finding> findings = CheckNoRawThreading(rel_path, source);
  std::vector<Finding> clock = CheckNoWallClock(rel_path, source);
  findings.insert(findings.end(), clock.begin(), clock.end());
  std::vector<Finding> todo = CheckTodoHasIssue(rel_path, source);
  findings.insert(findings.end(), todo.begin(), todo.end());
  return findings;
}

}  // namespace lint
}  // namespace hamlet
