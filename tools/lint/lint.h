// Project-specific lint checks that clang-tidy cannot express.
//
// Four invariants the codebase relies on but no compiler enforces:
//
//   1. MergeRunMetrics completeness — every field of RunMetrics must be
//      handled in MergeRunMetrics. Adding a counter to the struct and
//      forgetting the merge silently zeroes it in every ShardedSession
//      report; this was a recurring review catch before the checker.
//   2. No raw threading primitives outside src/common/ — std::mutex,
//      std::thread and friends must go through the annotated wrappers in
//      src/common/mutex.h and src/common/thread.h so Clang Thread Safety
//      Analysis sees every lock. (std::this_thread and std::atomic are
//      fine: TSA does not model them and the wrappers add nothing.)
//   3. No wall-clock or nondeterminism sources outside the clock/seed
//      plumbing — every timestamp must flow through ClockNow/clock_override
//      and every random draw through hamlet::Rng, or runs stop being
//      replayable from a seed.
//   4. No TODO/FIXME without an issue reference — `TODO(#123): ...` keeps
//      the backlog queryable; a bare TODO is a note to nobody.
//
// The checks are deliberately textual (comment-aware substring scans, not a
// parser): they run on fixtures in the self-test and on the real tree in
// CTest, and a textual rule is cheap enough to keep at zero false positives
// by allowlisting the few legitimate sites.
#ifndef HAMLET_TOOLS_LINT_LINT_H_
#define HAMLET_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace hamlet {
namespace lint {

/// One lint violation. `path` is whatever the caller passed in (relative
/// paths read better in CI logs), `line` is 1-based.
struct Finding {
  std::string path;
  int line = 0;
  std::string check;    // e.g. "raw-threading"
  std::string message;  // human-readable, includes the offending token
};

/// Replaces // and /* */ comment bodies and string/char literals with
/// spaces, preserving byte offsets and newlines so line numbers survive.
/// All checks below scan the stripped text: a comment that *mentions*
/// std::mutex is documentation, not a violation.
std::string StripCommentsAndStrings(const std::string& source);

/// Check 1: every field declared in `struct RunMetrics { ... }` (in
/// `header`) must appear as a member access in the body of
/// MergeRunMetrics (in `impl`). `header_path`/`impl_path` label findings.
std::vector<Finding> CheckMergeRunMetricsComplete(const std::string& header,
                                                  const std::string& impl,
                                                  const std::string& header_path,
                                                  const std::string& impl_path);

/// Parses the field names of `struct RunMetrics` out of a header. Exposed
/// for the self-test; returns an empty vector when the struct is missing.
std::vector<std::string> ParseRunMetricsFields(const std::string& header);

/// Check 2: raw std::mutex/std::thread/condition_variable/lock types.
/// `rel_path` is the path relative to the scanned root; files under
/// common/ are exempt (they implement the wrappers).
std::vector<Finding> CheckNoRawThreading(const std::string& rel_path,
                                         const std::string& source);

/// Check 3: wall-clock reads and nondeterminism sources. `rel_path` is
/// relative to the scanned root; the clock plumbing (runtime/session.cc,
/// which defines MonotonicSeconds as the single steady_clock site) is
/// exempt.
std::vector<Finding> CheckNoWallClock(const std::string& rel_path,
                                      const std::string& source);

/// Check 4: TODO/FIXME comments must carry an issue reference in the form
/// TODO(#123). Scans the ORIGINAL source (the targets live in comments).
std::vector<Finding> CheckTodoHasIssue(const std::string& rel_path,
                                       const std::string& source);

/// Runs checks 2–4 on one file (check 1 needs the header/impl pair and is
/// invoked separately by the driver).
std::vector<Finding> CheckFile(const std::string& rel_path,
                               const std::string& source);

}  // namespace lint
}  // namespace hamlet

#endif  // HAMLET_TOOLS_LINT_LINT_H_
