// Self-test for the project lint: golden BAD fixtures must produce exactly
// the expected findings, and the clean fixture (all the near-misses) must
// produce none. The real-tree run is a separate CTest entry (lint_tree)
// driving the hamlet_lint binary over src/.
#include "tools/lint/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hamlet {
namespace lint {
namespace {

std::string ReadFixture(const std::string& rel) {
  const std::string path = std::string(HAMLET_LINT_TESTDATA_DIR) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int CountCheck(const std::vector<Finding>& findings, const std::string& check) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.check == check; }));
}

TEST(StripCommentsAndStrings, BlanksCommentBodiesAndPreservesLines) {
  const std::string src =
      "int a; // std::mutex in a comment\n"
      "/* block\n"
      "   std::thread */ int b;\n"
      "const char* s = \"std::mutex\";\n";
  const std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("std::mutex"), std::string::npos);
  EXPECT_EQ(stripped.find("std::thread"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  // Same byte count and the same newline positions: line numbers survive.
  ASSERT_EQ(stripped.size(), src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(src[i] == '\n', stripped[i] == '\n') << "at byte " << i;
  }
}

TEST(StripCommentsAndStrings, HandlesEscapesAndRawStrings) {
  const std::string src =
      "const char* a = \"quote \\\" std::mutex\";\n"
      "const char* b = R\"(raw std::thread)\";\n"
      "char c = '\\'';\n"
      "int after = 1;\n";
  const std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("std::mutex"), std::string::npos);
  EXPECT_EQ(stripped.find("std::thread"), std::string::npos);
  EXPECT_NE(stripped.find("int after = 1;"), std::string::npos);
}

TEST(ParseRunMetricsFields, ExtractsEveryFieldOfTheFixtureStruct) {
  const std::vector<std::string> fields =
      ParseRunMetricsFields(ReadFixture("bad_metrics/metrics.h"));
  const std::vector<std::string> expected = {
      "events", "emissions", "elapsed_seconds", "late_events", "run_len_hist"};
  EXPECT_EQ(fields, expected);
}

TEST(MergeRunMetrics, FlagsExactlyTheForgottenField) {
  const std::vector<Finding> findings = CheckMergeRunMetricsComplete(
      ReadFixture("bad_metrics/metrics.h"), ReadFixture("bad_metrics/merge.cc"),
      "bad_metrics/metrics.h", "bad_metrics/merge.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "merge-run-metrics");
  EXPECT_EQ(findings[0].path, "bad_metrics/merge.cc");
  EXPECT_NE(findings[0].message.find("late_events"), std::string::npos);
  // The local variable named late_events in the fixture must not have
  // counted as coverage — that is the point of requiring a member access.
}

TEST(MergeRunMetrics, ReportsWhenTheStructIsMissing) {
  const std::vector<Finding> findings = CheckMergeRunMetricsComplete(
      "int x;", "void MergeRunMetrics() {}", "h", "cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("RunMetrics"), std::string::npos);
}

TEST(RawThreading, FlagsEveryPrimitiveInTheFixture) {
  const std::string src = ReadFixture("stray_mutex.cc");
  const std::vector<Finding> findings = CheckNoRawThreading("stray_mutex.cc", src);
  // Two std::mutex (declaration + lock_guard template argument), one
  // std::lock_guard, one std::thread. The comment and string mentions must
  // not count.
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_EQ(CountCheck(findings, "raw-threading"), 4);
  int mutexes = 0;
  for (const Finding& f : findings) {
    if (f.message.rfind("std::mutex ", 0) == 0) ++mutexes;
  }
  EXPECT_EQ(mutexes, 2);
}

TEST(RawThreading, ExemptsTheWrapperLayer) {
  const std::string src = ReadFixture("stray_mutex.cc");
  EXPECT_TRUE(CheckNoRawThreading("common/mutex.h", src).empty());
  // Only the first path component counts: a nested .../common/ is not the
  // wrapper layer.
  EXPECT_FALSE(CheckNoRawThreading("runtime/common/foo.cc", src).empty());
}

TEST(WallClock, FlagsEachNondeterminismSourceOnce) {
  const std::string src = ReadFixture("wall_clock.cc");
  const std::vector<Finding> findings = CheckNoWallClock("wall_clock.cc", src);
  // time(nullptr), random_device, steady_clock, rand() — and nothing for
  // the member call batch.time(0) or the identifier `operand`.
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_EQ(CountCheck(findings, "nondeterminism"), 4);
}

TEST(WallClock, ExemptsTheClockPlumbing) {
  const std::string src = ReadFixture("wall_clock.cc");
  EXPECT_TRUE(CheckNoWallClock("runtime/session.cc", src).empty());
}

TEST(WallClock, MemberAndArrowCallsAreNotTheLibcCall) {
  const std::string src =
      "long f(Batch& b, Batch* p) { return b.time(0) + p->time(0); }";
  EXPECT_TRUE(CheckNoWallClock("x.cc", src).empty());
}

TEST(WallClock, TimeWithARealArgumentIsNotAWallClockRead) {
  // time(&t) stores through an out-param; only the nullptr/NULL/0 forms
  // are the "give me now" idiom the ban targets.
  EXPECT_TRUE(CheckNoWallClock("x.cc", "void f(long* t) { time(t); }").empty());
  EXPECT_EQ(CheckNoWallClock("x.cc", "long f() { return time(0); }").size(),
            1u);
}

TEST(Todo, RequiresAnIssueReference) {
  const std::string src = ReadFixture("todo_bare.cc");
  const std::vector<Finding> findings = CheckTodoHasIssue("todo_bare.cc", src);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_EQ(CountCheck(findings, "todo-without-issue"), 2);
}

TEST(CleanFixture, ProducesNoFindings) {
  const std::string src = ReadFixture("clean/clean.cc");
  const std::vector<Finding> findings = CheckFile("clean/clean.cc", src);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.check << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace hamlet
