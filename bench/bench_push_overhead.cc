// Guards the Session wrapper overhead: batch Run() versus per-event Push()
// versus PushBatch() over one identical pre-materialized stream, per engine.
// The push path must stay within a few percent of batch throughput — the
// batch wrapper is itself a PushBatch, so any gap is pure per-call overhead
// (Status checks, busy-time sampling).
#include "src/benchlib/harness.h"
#include "src/runtime/executor.h"

namespace hamlet {
namespace {

using bench::Scale;

double BatchEps(const WorkloadPlan& plan, const RunConfig& config,
                const EventVector& events) {
  RunConfig batch = config;
  batch.collect_emissions = false;
  StreamExecutor executor(plan, batch);
  return executor.Run(events).metrics.throughput_eps;
}

double PushEps(const WorkloadPlan& plan, const RunConfig& config,
               const EventVector& events, size_t chunk) {
  Result<std::unique_ptr<Session>> session =
      Session::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  if (chunk <= 1) {
    for (const Event& e : events) {
      HAMLET_CHECK(session.value()->Push(e).ok());
    }
  } else {
    for (size_t i = 0; i < events.size(); i += chunk) {
      const size_t len = std::min(chunk, events.size() - i);
      HAMLET_CHECK(session.value()
                       ->PushBatch(std::span<const Event>(
                           events.data() + i, len))
                       .ok());
    }
  }
  return session.value()->Close().throughput_eps;
}

void Run() {
  BenchWorkload bw = MakeWorkload1("ridesharing", 8,
                                   /*window_ms=*/2 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = 11;
  gen.events_per_minute = Scale(20'000, 200'000);
  gen.duration_minutes = Scale(1, 3);
  gen.num_groups = 4;
  gen.burstiness = 0.9;
  gen.max_burst = 120;
  EventVector events = bw.generator->Generate(gen);

  Table table({"engine", "batch Run()", "Push(e)", "PushBatch(512)",
               "push/batch"});
  for (EngineKind kind :
       {EngineKind::kHamletDynamic, EngineKind::kGretaPrefix,
        EngineKind::kSharon}) {
    RunConfig config;
    config.kind = kind;
    const double batch = BatchEps(*bw.plan, config, events);
    const double push1 = PushEps(*bw.plan, config, events, 1);
    const double push512 = PushEps(*bw.plan, config, events, 512);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f",
                  batch <= 0 ? 0.0 : push1 / batch);
    table.AddRow({EngineKindName(kind), bench::Eps(batch), bench::Eps(push1),
                  bench::Eps(push512), ratio});
  }
  bench::PrintFigure("Push overhead",
                     "streaming push path vs batch wrapper, same stream",
                     table);
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
