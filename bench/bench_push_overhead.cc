// Guards the Session wrapper overhead and measures shard scaling.
//
// Part 1 — overhead: batch Run() versus per-event Push() versus PushBatch()
// over one identical pre-materialized stream, per engine. The push path
// must stay within a few percent of batch throughput — the batch wrapper is
// itself a PushBatch, so any gap is pure per-call overhead (Status checks,
// busy-time sampling).
//
// Part 2 — scaling: the same stream through ShardedSession at 1/2/4/8
// shards (capped by --threads=N) on a multi-group workload, four ingress
// granularities per shard count:
//  * hand-off: shard_batch_size=1, one queue message per event — the
//    pre-batching baseline the batched path must beat;
//  * batched: the default staging batch, one message per
//    shard_batch_size events;
//  * adaptive: RunConfig::adaptive_batching — the per-shard controller
//    picks the batch size per burst (full speed here, so it should ramp to
//    the fixed ceiling and match the batched column);
//  * prepart: PushPrePartitioned over batches built ahead of time with the
//    session's ShardRouter, so the timed loop does no per-event hashing at
//    all — the closest measurable proxy for real multi-core engine scaling.
// Reported as end-to-end wall-clock events/s (first push to Close-join
// inclusive), since summed per-shard busy-time throughput would hide
// queueing effects. Expect near-linear speedup up to the machine's core
// count; beyond it the extra shards only add hand-off overhead.
//
// Part 3 — bursty ingress (fixed vs adaptive): the stream is replayed as
// alternating full-speed bursts and paced lulls (2 ms inter-arrival). Burst
// throughput is timed over the burst phases only; after each lull phase the
// bench probes how long the lull tail takes to REACH its shard worker
// (spin on MetricsSnapshot, capped at 4 ms) — the staging residency that
// fixed batching turns into emission-delivery latency. Fixed batching
// should win bursts and lose lulls badly (events sit staged until the next
// burst fills the batch); adaptive should match burst throughput while
// delivering lull events in microseconds.
//
// Part 4 — skewed groups (hash vs rebalance): a hot-key stream (30% of
// events on one group, the rest spread over 63 progressively appearing
// groups) at 4 shards, pure-hash routing versus
// RunConfig::shard_rebalance_threshold. Reported: wall events/s, the
// busiest shard's event share (the bottleneck the rebalancer removes), and
// the diverted-key count.
//
// Part 5 — concurrent ingest + work stealing (hot-key preset): the Part 4
// skewed stream pushed by --producers=N concurrent Producer handles
// (strided split; the generator's strictly increasing timestamps make any
// split per-producer ordered) through 1/2/4/8 shards, with pane-boundary
// work stealing off vs on. Pure hash routing, so stealing is the only
// balancer — this is the PR 5 gap the steal protocol closes: the
// rebalancer only places NEW keys, a steal migrates a hot key that is
// already placed. Reported: wall events/s both ways, executed steals, and
// duplication-window double-staged events (the protocol's overhead).
//
// Pass --json to append one machine-readable `JSON: {...}` line per table
// so future PRs can track the scaling numbers.
#include <chrono>
#include <string>
#include <thread>

#include "src/benchlib/harness.h"
#include "src/runtime/executor.h"
#include "src/stream/shard_router.h"

namespace hamlet {
namespace {

using bench::Scale;

double BatchEps(const WorkloadPlan& plan, const RunConfig& config,
                const EventVector& events) {
  RunConfig batch = config;
  batch.collect_emissions = false;
  StreamExecutor executor(plan, batch);
  return executor.Run(events).metrics.throughput_eps;
}

double PushEps(const WorkloadPlan& plan, const RunConfig& config,
               const EventVector& events, size_t chunk) {
  Result<std::unique_ptr<Session>> session =
      Session::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  if (chunk <= 1) {
    for (const Event& e : events) {
      HAMLET_CHECK(session.value()->Push(e).ok());
    }
  } else {
    for (size_t i = 0; i < events.size(); i += chunk) {
      const size_t len = std::min(chunk, events.size() - i);
      HAMLET_CHECK(session.value()
                       ->PushBatch(std::span<const Event>(
                           events.data() + i, len))
                       .ok());
    }
  }
  return session.value()->Close().value().throughput_eps;
}

double WallEps(size_t events,
               std::chrono::steady_clock::time_point start) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return wall <= 0 ? 0 : static_cast<double>(events) / wall;
}

/// Wall-clock events/s through a ShardedSession: pre-materialized stream,
/// PushBatch(512) chunks, timed from first push through Close (join
/// included), so queue hand-off and imbalance count against the number.
double ShardedWallEps(const WorkloadPlan& plan, const RunConfig& config,
                      const EventVector& events) {
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  constexpr size_t kChunk = 512;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < events.size(); i += kChunk) {
    const size_t len = std::min(kChunk, events.size() - i);
    HAMLET_CHECK(session.value()
                     ->PushBatch(std::span<const Event>(
                         events.data() + i, len))
                     .ok());
  }
  HAMLET_CHECK(session.value()->Close().ok());
  return WallEps(events.size(), start);
}

/// Same measurement over PushPrePartitioned: the per-shard sub-batches are
/// built before the clock starts (shard-aware generation), so the timed
/// region is pure hand-off + engine work.
double PrePartitionedWallEps(const WorkloadPlan& plan,
                             const RunConfig& config,
                             const EventVector& events) {
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  std::vector<PartitionedBatch> chunks =
      PartitionBatches(events, session.value()->router(), /*batch_events=*/512);
  const auto start = std::chrono::steady_clock::now();
  for (PartitionedBatch& chunk : chunks) {
    HAMLET_CHECK(session.value()->PushPrePartitioned(std::move(chunk)).ok());
  }
  HAMLET_CHECK(session.value()->Close().ok());
  return WallEps(events.size(), start);
}

void RunOverhead(const BenchWorkload& bw, const EventVector& events) {
  Table table({"engine", "batch Run()", "Push(e)", "PushBatch(512)",
               "push/batch"});
  for (EngineKind kind :
       {EngineKind::kHamletDynamic, EngineKind::kGretaPrefix,
        EngineKind::kSharon}) {
    RunConfig config;
    config.kind = kind;
    const double batch = BatchEps(*bw.plan, config, events);
    const double push1 = PushEps(*bw.plan, config, events, 1);
    const double push512 = PushEps(*bw.plan, config, events, 512);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f",
                  batch <= 0 ? 0.0 : push1 / batch);
    table.AddRow({EngineKindName(kind), bench::Eps(batch), bench::Eps(push1),
                  bench::Eps(push512), ratio});
  }
  bench::PrintFigure("Push overhead",
                     "streaming push path vs batch wrapper, same stream",
                     table);
}

void RunScaling(const BenchWorkload& bw, const EventVector& events,
                int max_shards, bool json) {
  Table table({"shards", "hand-off eps", "batched eps", "adaptive eps",
               "prepart eps", "speedup vs 1"});
  std::string json_rows;
  double base = 0;
  for (int shards = 1; shards <= max_shards; shards *= 2) {
    RunConfig config;
    config.kind = EngineKind::kHamletDynamic;
    config.num_shards = shards;
    // Per-event hand-off baseline: one queue message per event.
    RunConfig handoff_config = config;
    handoff_config.shard_batch_size = 1;
    RunConfig adaptive_config = config;
    adaptive_config.adaptive_batching = true;
    const double handoff = ShardedWallEps(*bw.plan, handoff_config, events);
    const double batched = ShardedWallEps(*bw.plan, config, events);
    const double adaptive = ShardedWallEps(*bw.plan, adaptive_config, events);
    const double prepart = PrePartitionedWallEps(*bw.plan, config, events);
    if (shards == 1) base = batched;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  base <= 0 ? 0.0 : batched / base);
    table.AddRow({std::to_string(shards), bench::Eps(handoff),
                  bench::Eps(batched), bench::Eps(adaptive),
                  bench::Eps(prepart), speedup});
    if (json) {
      char row[320];
      std::snprintf(row, sizeof(row),
                    "%s{\"shards\":%d,\"handoff_eps\":%.1f,"
                    "\"batched_eps\":%.1f,\"adaptive_eps\":%.1f,"
                    "\"prepartitioned_eps\":%.1f,"
                    "\"speedup_batched\":%.3f}",
                    json_rows.empty() ? "" : ",", shards, handoff, batched,
                    adaptive, prepart, base <= 0 ? 0.0 : batched / base);
      json_rows += row;
    }
  }
  bench::PrintFigure(
      "Shard scaling",
      "ShardedSession wall-clock throughput by ingress granularity, "
      "hamlet dynamic, multi-group",
      table);
  if (json) {
    std::printf(
        "JSON: {\"bench\":\"push_overhead\",\"table\":\"shard_scaling\","
        "\"max_shards\":%d,\"events\":%zu,\"rows\":[%s]}\n",
        max_shards, events.size(), json_rows.c_str());
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Part 2b: run-granular vs row-granular dispatch on the bursty preset.
// ---------------------------------------------------------------------------

/// Same stream, same session, PushBatch(512) chunks — run_propagation on
/// (segment each staged batch into maximal same-type/same-pass-set runs,
/// one engine call per run) vs off (one engine call per row). Also reports
/// the run-shape metrics the knob exposes: total runs, runs per pane, and
/// the log2 run-length histogram (bucket i = runs of length [2^i, 2^(i+1))).
void RunRunPropagation(const BenchWorkload& bw, const EventVector& events,
                       bool json) {
  // Pane count of the replayed stream: runs are pane-confined, so this is
  // the denominator of the runs-per-pane shape metric.
  int64_t panes = 0;
  if (bw.plan->pane_size > 0) {
    const Timestamp pane = bw.plan->pane_size;
    Timestamp prev = 0;
    bool first = true;
    for (const Event& e : events) {
      const Timestamp p = (e.time / pane) * pane;
      if (first || p != prev) {
        ++panes;
        prev = p;
        first = false;
      }
    }
  }
  Table table({"dispatch", "PushBatch eps", "runs", "runs/pane",
               "run len hist (log2)"});
  std::string json_rows;
  for (bool runs_on : {true, false}) {
    RunConfig config;
    config.kind = EngineKind::kHamletDynamic;
    config.columnar = true;
    config.run_propagation = runs_on;
    // Best of 3 replays: the dispatch paths differ by only a few percent,
    // so a single pass is below the noise floor of the wall clock.
    RunMetrics m;
    for (int rep = 0; rep < 3; ++rep) {
      Result<std::unique_ptr<Session>> session =
          Session::Open(*bw.plan, config, /*sink=*/nullptr);
      HAMLET_CHECK(session.ok());
      constexpr size_t kChunk = 512;
      for (size_t i = 0; i < events.size(); i += kChunk) {
        const size_t len = std::min(kChunk, events.size() - i);
        HAMLET_CHECK(session.value()
                         ->PushBatch(std::span<const Event>(
                             events.data() + i, len))
                         .ok());
      }
      RunMetrics rm = session.value()->Close().value();
      if (rep == 0 || rm.throughput_eps > m.throughput_eps) m = std::move(rm);
    }
    const double rpp = panes <= 0 ? 0.0
                                  : static_cast<double>(m.runs) /
                                        static_cast<double>(panes);
    char rpp_str[32];
    std::snprintf(rpp_str, sizeof(rpp_str), "%.1f", rpp);
    std::string hist = "[";
    for (size_t b = 0; b < m.run_len_hist.size(); ++b) {
      if (b > 0) hist += ",";
      hist += std::to_string(m.run_len_hist[b]);
    }
    hist += "]";
    table.AddRow({runs_on ? "runs" : "rows",
                  bench::Eps(m.throughput_eps), std::to_string(m.runs),
                  rpp_str, hist});
    if (json) {
      char row[512];
      std::snprintf(row, sizeof(row),
                    "%s{\"mode\":\"%s\",\"push_eps\":%.1f,\"runs\":%lld,"
                    "\"panes\":%lld,\"runs_per_pane\":%.2f,"
                    "\"run_len_hist\":%s}",
                    json_rows.empty() ? "" : ",", runs_on ? "runs" : "rows",
                    m.throughput_eps, static_cast<long long>(m.runs),
                    static_cast<long long>(panes), rpp, hist.c_str());
      json_rows += row;
    }
  }
  bench::PrintFigure(
      "Run propagation (bursty preset)",
      "run-granular engine dispatch vs per-row dispatch, same staged "
      "batches; runs/pane and the run-length histogram describe the "
      "stream's burst shape",
      table);
  if (json) {
    std::printf(
        "JSON: {\"bench\":\"push_overhead\",\"table\":\"run_propagation\","
        "\"events\":%zu,\"rows\":[%s]}\n",
        events.size(), json_rows.c_str());
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Part 3: bursty ingress, fixed vs adaptive.
// ---------------------------------------------------------------------------

struct BurstyNumbers {
  double burst_eps = 0.0;
  double lull_handoff_mean_us = 0.0;
  double lull_handoff_max_us = 0.0;
  int64_t batches = 0;
  int64_t max_queue_depth = 0;
};

/// Replays `events` as alternating full-speed bursts (PushBatch chunks) and
/// paced lulls (single Push every kLullGap), probing after each lull how
/// long its tail needs to reach the shard workers. See file comment.
BurstyNumbers RunBurstyOnce(const WorkloadPlan& plan, const RunConfig& config,
                            const EventVector& events) {
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  constexpr size_t kBurstLen = 4096;
  constexpr size_t kLullLen = 16;
  constexpr size_t kChunk = 256;
  constexpr auto kLullGap = std::chrono::milliseconds(2);
  constexpr auto kProbeCap = std::chrono::milliseconds(4);
  BurstyNumbers out;
  double burst_seconds = 0.0;
  size_t burst_events = 0;
  double probe_sum_us = 0.0;
  int probes = 0;
  size_t i = 0;
  bool burst = true;
  while (i < events.size()) {
    if (burst) {
      const size_t end = std::min(events.size(), i + kBurstLen);
      burst_events += end - i;
      const auto t0 = std::chrono::steady_clock::now();
      while (i < end) {
        const size_t len = std::min(kChunk, end - i);
        HAMLET_CHECK(session.value()
                         ->PushBatch(std::span<const Event>(
                             events.data() + i, len))
                         .ok());
        i += len;
      }
      burst_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    } else {
      const size_t end = std::min(events.size(), i + kLullLen);
      while (i < end) {
        std::this_thread::sleep_for(kLullGap);
        HAMLET_CHECK(session.value()->Push(events[i]).ok());
        ++i;
      }
      // Hand-off probe: a lull event that sits in staging is an emission
      // the user sees late. Spin until every pushed event has reached its
      // shard worker — or give up at the cap (fixed batching holds the lull
      // tail hostage until the next burst fills the batch).
      const auto t0 = std::chrono::steady_clock::now();
      while (session.value()->MetricsSnapshot().events <
                 static_cast<int64_t>(i) &&
             std::chrono::steady_clock::now() - t0 < kProbeCap) {
        std::this_thread::yield();
      }
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      probe_sum_us += us;
      out.lull_handoff_max_us = std::max(out.lull_handoff_max_us, us);
      ++probes;
    }
    burst = !burst;
  }
  RunMetrics m = session.value()->Close().value();
  out.burst_eps = burst_seconds <= 0
                      ? 0.0
                      : static_cast<double>(burst_events) / burst_seconds;
  out.lull_handoff_mean_us = probes == 0 ? 0.0 : probe_sum_us / probes;
  for (int64_t bucket : m.shard_batch_hist) out.batches += bucket;
  out.max_queue_depth = m.max_queue_depth_msgs;
  return out;
}

void RunBursty(const BenchWorkload& bw, const EventVector& events,
               int max_shards, bool json) {
  const int shards = std::min(max_shards, 2);
  Table table({"ingress", "burst eps", "lull hand-off us (mean)",
               "lull hand-off us (max)", "batches", "max qdepth"});
  std::string json_rows;
  for (bool adaptive : {false, true}) {
    RunConfig config;
    config.kind = EngineKind::kHamletDynamic;
    config.num_shards = shards;
    config.adaptive_batching = adaptive;
    BurstyNumbers n = RunBurstyOnce(*bw.plan, config, events);
    char mean_us[32], max_us[32];
    std::snprintf(mean_us, sizeof(mean_us), "%.0f", n.lull_handoff_mean_us);
    std::snprintf(max_us, sizeof(max_us), "%.0f", n.lull_handoff_max_us);
    table.AddRow({adaptive ? "adaptive" : "fixed", bench::Eps(n.burst_eps),
                  mean_us, max_us, std::to_string(n.batches),
                  std::to_string(n.max_queue_depth)});
    if (json) {
      char row[320];
      std::snprintf(
          row, sizeof(row),
          "%s{\"mode\":\"%s\",\"burst_eps\":%.1f,"
          "\"lull_handoff_mean_us\":%.1f,\"lull_handoff_max_us\":%.1f,"
          "\"batches\":%lld,\"max_queue_depth\":%lld}",
          json_rows.empty() ? "" : ",", adaptive ? "adaptive" : "fixed",
          n.burst_eps, n.lull_handoff_mean_us, n.lull_handoff_max_us,
          static_cast<long long>(n.batches),
          static_cast<long long>(n.max_queue_depth));
      json_rows += row;
    }
  }
  bench::PrintFigure(
      "Adaptive ingress (bursty preset)",
      "alternating full-speed bursts and 2 ms-paced lulls; hand-off = "
      "staging residency of the lull tail (capped at 4000 us)",
      table);
  if (json) {
    std::printf(
        "JSON: {\"bench\":\"push_overhead\",\"table\":\"adaptive_bursty\","
        "\"shards\":%d,\"events\":%zu,\"rows\":[%s]}\n",
        shards, events.size(), json_rows.c_str());
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Part 4: skewed groups, pure hash vs skew-aware rebalancing.
// ---------------------------------------------------------------------------

void RunSkewed(const BenchWorkload& bw, const EventVector& events,
               int max_shards, bool json) {
  const int shards = std::min(max_shards, 4);
  Table table({"routing", "wall eps", "max shard share", "rebalanced keys"});
  std::string json_rows;
  for (int64_t threshold : {int64_t{0}, int64_t{64}}) {
    RunConfig config;
    config.kind = EngineKind::kHamletDynamic;
    config.num_shards = shards;
    config.shard_rebalance_threshold = threshold;
    Result<std::unique_ptr<ShardedSession>> session =
        ShardedSession::Open(*bw.plan, config, /*sink=*/nullptr);
    HAMLET_CHECK(session.ok());
    constexpr size_t kChunk = 512;
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < events.size(); i += kChunk) {
      const size_t len = std::min(kChunk, events.size() - i);
      HAMLET_CHECK(session.value()
                       ->PushBatch(std::span<const Event>(
                           events.data() + i, len))
                       .ok());
    }
    RunMetrics m = session.value()->Close().value();
    const double eps = WallEps(events.size(), start);
    int64_t busiest = 0;
    for (int64_t per_shard : m.shard_events) {
      busiest = std::max(busiest, per_shard);
    }
    const double share =
        m.events <= 0 ? 0.0
                      : static_cast<double>(busiest) /
                            static_cast<double>(m.events);
    char share_str[32];
    std::snprintf(share_str, sizeof(share_str), "%.1f%%", share * 100.0);
    table.AddRow({threshold == 0 ? "hash" : "rebalance", bench::Eps(eps),
                  share_str, std::to_string(m.rebalanced_keys)});
    if (json) {
      char row[256];
      std::snprintf(row, sizeof(row),
                    "%s{\"mode\":\"%s\",\"wall_eps\":%.1f,"
                    "\"max_shard_share\":%.4f,\"rebalanced_keys\":%lld}",
                    json_rows.empty() ? "" : ",",
                    threshold == 0 ? "hash" : "rebalance", eps, share,
                    static_cast<long long>(m.rebalanced_keys));
      json_rows += row;
    }
  }
  bench::PrintFigure(
      "Skew routing (hot-key preset)",
      "30% hot key + 63 progressively appearing groups; max shard share = "
      "the bottleneck shard's fraction of all events",
      table);
  if (json) {
    std::printf(
        "JSON: {\"bench\":\"push_overhead\",\"table\":\"skew_routing\","
        "\"shards\":%d,\"events\":%zu,\"rows\":[%s]}\n",
        shards, events.size(), json_rows.c_str());
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Part 5: concurrent producers x work stealing on the hot-key preset.
// ---------------------------------------------------------------------------

/// Wall-clock events/s with `producers` threads each pushing a strided
/// subsequence through its own Producer handle (PushBatch(512) chunks
/// copied out of the stride), all closing with a final watermark at the
/// stream's last timestamp. Timed from first push through session Close.
double MultiProducerWallEps(const WorkloadPlan& plan, const RunConfig& config,
                            const EventVector& events, int producers,
                            RunMetrics* metrics_out) {
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  std::vector<std::unique_ptr<ShardedSession::Producer>> handles;
  for (int p = 0; p < producers; ++p) {
    handles.push_back(session.value()->AddProducer().value());
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      constexpr size_t kChunk = 512;
      EventVector chunk;
      chunk.reserve(kChunk);
      ShardedSession::Producer& handle = *handles[static_cast<size_t>(p)];
      for (size_t i = static_cast<size_t>(p); i < events.size();
           i += static_cast<size_t>(producers)) {
        chunk.push_back(events[i]);
        if (chunk.size() == kChunk) {
          HAMLET_CHECK(handle
                           .PushBatch(std::span<const Event>(chunk.data(),
                                                             chunk.size()))
                           .ok());
          chunk.clear();
        }
      }
      if (!chunk.empty()) {
        HAMLET_CHECK(handle
                         .PushBatch(std::span<const Event>(chunk.data(),
                                                           chunk.size()))
                         .ok());
      }
      HAMLET_CHECK(handle.AdvanceTo(events.back().time).ok());
      HAMLET_CHECK(handle.Close().ok());
    });
  }
  for (std::thread& t : threads) t.join();
  RunMetrics m = session.value()->Close().value();
  if (metrics_out != nullptr) *metrics_out = m;
  return WallEps(events.size(), start);
}

void RunMultiProducer(const BenchWorkload& bw, const EventVector& events,
                      int max_shards, int producers, bool json) {
  Table table({"shards", "steal off eps", "steal on eps", "stolen panes",
               "dup events", "on speedup vs 1"});
  std::string json_rows;
  double base_on = 0;
  for (int shards = 1; shards <= max_shards; shards *= 2) {
    RunConfig config;
    config.kind = EngineKind::kHamletDynamic;
    config.num_shards = shards;
    const double off_eps =
        MultiProducerWallEps(*bw.plan, config, events, producers, nullptr);
    config.work_stealing = true;
    RunMetrics on_metrics;
    const double on_eps = MultiProducerWallEps(*bw.plan, config, events,
                                               producers, &on_metrics);
    if (shards == 1) base_on = on_eps;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  base_on <= 0 ? 0.0 : on_eps / base_on);
    table.AddRow({std::to_string(shards), bench::Eps(off_eps),
                  bench::Eps(on_eps),
                  std::to_string(on_metrics.stolen_panes),
                  std::to_string(on_metrics.duplicated_events), speedup});
    if (json) {
      char row[320];
      std::snprintf(row, sizeof(row),
                    "%s{\"shards\":%d,\"steal_off_eps\":%.1f,"
                    "\"steal_on_eps\":%.1f,\"stolen_panes\":%lld,"
                    "\"duplicated_events\":%lld,\"speedup_on\":%.3f}",
                    json_rows.empty() ? "" : ",", shards, off_eps, on_eps,
                    static_cast<long long>(on_metrics.stolen_panes),
                    static_cast<long long>(on_metrics.duplicated_events),
                    base_on <= 0 ? 0.0 : on_eps / base_on);
      json_rows += row;
    }
  }
  bench::PrintFigure(
      "Concurrent ingest + work stealing (hot-key preset)",
      "strided stream over " + std::to_string(producers) +
          " producer handles, pure hash routing; stealing migrates the "
          "already-placed hot keys the PR 5 rebalancer cannot move",
      table);
  if (json) {
    std::printf(
        "JSON: {\"bench\":\"push_overhead\",\"table\":\"mp_hot_key\","
        "\"producers\":%d,\"max_shards\":%d,\"events\":%zu,\"rows\":[%s]}\n",
        producers, max_shards, events.size(), json_rows.c_str());
    std::fflush(stdout);
  }
}

void Run(int max_shards, int producers, bool json) {
  {
    BenchWorkload bw = MakeWorkload1("ridesharing", 8,
                                     /*window_ms=*/2 * kMillisPerSecond);
    GeneratorConfig gen;
    gen.seed = 11;
    gen.events_per_minute = Scale(20'000, 200'000);
    gen.duration_minutes = Scale(1, 3);
    gen.num_groups = 4;
    gen.burstiness = 0.9;
    gen.max_burst = 120;
    EventVector events = bw.generator->Generate(gen);
    RunOverhead(bw, events);
    // The run-propagation figure gets a single-group stream: with several
    // groups the per-group same-type bursts interleave in time order and
    // fragment into short runs, hiding the dispatch-granularity effect the
    // figure isolates.
    GeneratorConfig run_gen = gen;
    run_gen.seed = 13;
    run_gen.num_groups = 1;
    EventVector run_events = bw.generator->Generate(run_gen);
    RunRunPropagation(bw, run_events, json);
  }
  {
    // Scaling wants many independent groups so the hash spreads work evenly
    // across shards; 64 districts keeps the worst shard within a few
    // percent of the mean at 8 shards.
    BenchWorkload bw = MakeWorkload1("ridesharing", 8,
                                     /*window_ms=*/2 * kMillisPerSecond);
    GeneratorConfig gen;
    gen.seed = 12;
    gen.events_per_minute = Scale(40'000, 400'000);
    gen.duration_minutes = Scale(1, 3);
    gen.num_groups = 64;
    gen.burstiness = 0.9;
    gen.max_burst = 120;
    EventVector events = bw.generator->Generate(gen);
    RunScaling(bw, events, max_shards, json);
    RunBursty(bw, events, max_shards, json);
    // Skewed preset: same workload, group keys rewritten to a hot-key
    // distribution with progressively appearing cold groups.
    EventVector skewed = events;
    SkewGroups(skewed, bw.plan->exec_queries[0].group_by, /*num_groups=*/64,
               /*hot_fraction=*/0.3, /*seed=*/21);
    RunSkewed(bw, skewed, max_shards, json);
    if (producers > 0) {
      RunMultiProducer(bw, skewed, max_shards, producers, json);
    }
  }
}

}  // namespace
}  // namespace hamlet

int main(int argc, char** argv) {
  // --threads=N caps the scaling curve (default 8: 1/2/4/8); --producers=N
  // drives the hot-key preset through N concurrent Producer handles
  // (0 skips the figure); --json appends a machine-readable line per table.
  hamlet::Run(hamlet::bench::ThreadsFlag(argc, argv, /*fallback=*/8),
              hamlet::bench::ProducersFlag(argc, argv, /*fallback=*/2),
              hamlet::bench::JsonFlag(argc, argv));
  return 0;
}
