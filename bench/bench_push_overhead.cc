// Guards the Session wrapper overhead and measures shard scaling.
//
// Part 1 — overhead: batch Run() versus per-event Push() versus PushBatch()
// over one identical pre-materialized stream, per engine. The push path
// must stay within a few percent of batch throughput — the batch wrapper is
// itself a PushBatch, so any gap is pure per-call overhead (Status checks,
// busy-time sampling).
//
// Part 2 — scaling: the same stream through ShardedSession at 1/2/4/8
// shards (capped by --threads=N) on a multi-group workload, three ingress
// granularities per shard count:
//  * hand-off: shard_batch_size=1, one queue message per event — the
//    pre-batching baseline the batched path must beat;
//  * batched: the default staging batch, one message per
//    shard_batch_size events;
//  * prepart: PushPrePartitioned over batches built ahead of time with the
//    session's ShardRouter, so the timed loop does no per-event hashing at
//    all — the closest measurable proxy for real multi-core engine scaling.
// Reported as end-to-end wall-clock events/s (first push to Close-join
// inclusive), since summed per-shard busy-time throughput would hide
// queueing effects. Expect near-linear speedup up to the machine's core
// count; beyond it the extra shards only add hand-off overhead.
//
// Pass --json to append one machine-readable `JSON: {...}` line per table
// so future PRs can track the scaling numbers.
#include <chrono>
#include <string>

#include "src/benchlib/harness.h"
#include "src/runtime/executor.h"
#include "src/stream/shard_router.h"

namespace hamlet {
namespace {

using bench::Scale;

double BatchEps(const WorkloadPlan& plan, const RunConfig& config,
                const EventVector& events) {
  RunConfig batch = config;
  batch.collect_emissions = false;
  StreamExecutor executor(plan, batch);
  return executor.Run(events).metrics.throughput_eps;
}

double PushEps(const WorkloadPlan& plan, const RunConfig& config,
               const EventVector& events, size_t chunk) {
  Result<std::unique_ptr<Session>> session =
      Session::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  if (chunk <= 1) {
    for (const Event& e : events) {
      HAMLET_CHECK(session.value()->Push(e).ok());
    }
  } else {
    for (size_t i = 0; i < events.size(); i += chunk) {
      const size_t len = std::min(chunk, events.size() - i);
      HAMLET_CHECK(session.value()
                       ->PushBatch(std::span<const Event>(
                           events.data() + i, len))
                       .ok());
    }
  }
  return session.value()->Close().value().throughput_eps;
}

double WallEps(size_t events,
               std::chrono::steady_clock::time_point start) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return wall <= 0 ? 0 : static_cast<double>(events) / wall;
}

/// Wall-clock events/s through a ShardedSession: pre-materialized stream,
/// PushBatch(512) chunks, timed from first push through Close (join
/// included), so queue hand-off and imbalance count against the number.
double ShardedWallEps(const WorkloadPlan& plan, const RunConfig& config,
                      const EventVector& events) {
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  constexpr size_t kChunk = 512;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < events.size(); i += kChunk) {
    const size_t len = std::min(kChunk, events.size() - i);
    HAMLET_CHECK(session.value()
                     ->PushBatch(std::span<const Event>(
                         events.data() + i, len))
                     .ok());
  }
  HAMLET_CHECK(session.value()->Close().ok());
  return WallEps(events.size(), start);
}

/// Same measurement over PushPrePartitioned: the per-shard sub-batches are
/// built before the clock starts (shard-aware generation), so the timed
/// region is pure hand-off + engine work.
double PrePartitionedWallEps(const WorkloadPlan& plan,
                             const RunConfig& config,
                             const EventVector& events) {
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  std::vector<PartitionedBatch> chunks =
      PartitionBatches(events, session.value()->router(), /*batch_events=*/512);
  const auto start = std::chrono::steady_clock::now();
  for (PartitionedBatch& chunk : chunks) {
    HAMLET_CHECK(session.value()->PushPrePartitioned(std::move(chunk)).ok());
  }
  HAMLET_CHECK(session.value()->Close().ok());
  return WallEps(events.size(), start);
}

void RunOverhead(const BenchWorkload& bw, const EventVector& events) {
  Table table({"engine", "batch Run()", "Push(e)", "PushBatch(512)",
               "push/batch"});
  for (EngineKind kind :
       {EngineKind::kHamletDynamic, EngineKind::kGretaPrefix,
        EngineKind::kSharon}) {
    RunConfig config;
    config.kind = kind;
    const double batch = BatchEps(*bw.plan, config, events);
    const double push1 = PushEps(*bw.plan, config, events, 1);
    const double push512 = PushEps(*bw.plan, config, events, 512);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f",
                  batch <= 0 ? 0.0 : push1 / batch);
    table.AddRow({EngineKindName(kind), bench::Eps(batch), bench::Eps(push1),
                  bench::Eps(push512), ratio});
  }
  bench::PrintFigure("Push overhead",
                     "streaming push path vs batch wrapper, same stream",
                     table);
}

void RunScaling(const BenchWorkload& bw, const EventVector& events,
                int max_shards, bool json) {
  Table table({"shards", "hand-off eps", "batched eps", "prepart eps",
               "speedup vs 1"});
  std::string json_rows;
  double base = 0;
  for (int shards = 1; shards <= max_shards; shards *= 2) {
    RunConfig config;
    config.kind = EngineKind::kHamletDynamic;
    config.num_shards = shards;
    // Per-event hand-off baseline: one queue message per event.
    RunConfig handoff_config = config;
    handoff_config.shard_batch_size = 1;
    const double handoff = ShardedWallEps(*bw.plan, handoff_config, events);
    const double batched = ShardedWallEps(*bw.plan, config, events);
    const double prepart = PrePartitionedWallEps(*bw.plan, config, events);
    if (shards == 1) base = batched;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  base <= 0 ? 0.0 : batched / base);
    table.AddRow({std::to_string(shards), bench::Eps(handoff),
                  bench::Eps(batched), bench::Eps(prepart), speedup});
    if (json) {
      char row[256];
      std::snprintf(row, sizeof(row),
                    "%s{\"shards\":%d,\"handoff_eps\":%.1f,"
                    "\"batched_eps\":%.1f,\"prepartitioned_eps\":%.1f,"
                    "\"speedup_batched\":%.3f}",
                    json_rows.empty() ? "" : ",", shards, handoff, batched,
                    prepart, base <= 0 ? 0.0 : batched / base);
      json_rows += row;
    }
  }
  bench::PrintFigure(
      "Shard scaling",
      "ShardedSession wall-clock throughput by ingress granularity, "
      "hamlet dynamic, multi-group",
      table);
  if (json) {
    std::printf(
        "JSON: {\"bench\":\"push_overhead\",\"table\":\"shard_scaling\","
        "\"max_shards\":%d,\"events\":%zu,\"rows\":[%s]}\n",
        max_shards, events.size(), json_rows.c_str());
    std::fflush(stdout);
  }
}

void Run(int max_shards, bool json) {
  {
    BenchWorkload bw = MakeWorkload1("ridesharing", 8,
                                     /*window_ms=*/2 * kMillisPerSecond);
    GeneratorConfig gen;
    gen.seed = 11;
    gen.events_per_minute = Scale(20'000, 200'000);
    gen.duration_minutes = Scale(1, 3);
    gen.num_groups = 4;
    gen.burstiness = 0.9;
    gen.max_burst = 120;
    EventVector events = bw.generator->Generate(gen);
    RunOverhead(bw, events);
  }
  {
    // Scaling wants many independent groups so the hash spreads work evenly
    // across shards; 64 districts keeps the worst shard within a few
    // percent of the mean at 8 shards.
    BenchWorkload bw = MakeWorkload1("ridesharing", 8,
                                     /*window_ms=*/2 * kMillisPerSecond);
    GeneratorConfig gen;
    gen.seed = 12;
    gen.events_per_minute = Scale(40'000, 400'000);
    gen.duration_minutes = Scale(1, 3);
    gen.num_groups = 64;
    gen.burstiness = 0.9;
    gen.max_burst = 120;
    EventVector events = bw.generator->Generate(gen);
    RunScaling(bw, events, max_shards, json);
  }
}

}  // namespace
}  // namespace hamlet

int main(int argc, char** argv) {
  // --threads=N caps the scaling curve (default 8: 1/2/4/8); --json appends
  // a machine-readable line per table.
  hamlet::Run(hamlet::bench::ThreadsFlag(argc, argv, /*fallback=*/8),
              hamlet::bench::JsonFlag(argc, argv));
  return 0;
}
