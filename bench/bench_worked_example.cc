// Tables 3-5 / Figures 4-5: the paper's worked example, executed live.
//
// Prints the snapshot values per query for the A A C | B B B B | A A C C C
// | B stream, matching Tables 3 and 4 exactly (asserted in
// hamlet_paper_example_test; printed here for inspection).
#include <cstdio>

#include "src/hamlet/hamlet_engine.h"
#include "src/optimizer/policies.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

void Run() {
  Schema schema;
  Workload workload(&schema);
  for (const char* text :
       {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
        "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min"}) {
    HAMLET_CHECK(workload.Add(ParseQuery(text).value()).ok());
  }
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  std::printf("Merged template (paper Fig. 3(b)):\n%s\n",
              plan.merged.ToString(schema).c_str());
  std::printf("%s\n", plan.Describe().c_str());

  EventVector ev = ParseStreamScript("A A C B B B B A A C C C B", &schema);
  AlwaysSharePolicy policy;
  HamletEngine engine(plan, plan.AllExec(), &policy);
  ContextId q1 = engine.OpenContext(0, 0, 100);
  ContextId q2 = engine.OpenContext(1, 0, 100);
  engine.OnPaneStart(0);
  for (const Event& e : ev) engine.OnEvent(e);

  const SnapshotStore& store = engine.snapshot_store();
  std::printf("Table 4 — snapshot values per query:\n");
  std::printf("  value(x, q1) = %g (paper: 2)\n", store.Get(1, q1).count);
  std::printf("  value(x, q2) = %g (paper: 1)\n", store.Get(1, q2).count);
  std::printf("  value(y, q1) = %g (paper: 2 + 15*2 + 2 = 34)\n",
              store.Get(3, q1).count);
  std::printf("  value(y, q2) = %g (paper: 1 + 15*1 + 3 = 19)\n",
              store.Get(3, q2).count);

  engine.OnPaneEnd();
  ContextResult r1 = engine.CloseContext(q1);
  ContextResult r2 = engine.CloseContext(q2);
  std::printf("Final trend counts: fcount(q1) = %g, fcount(q2) = %g\n",
              r1.value, r2.value);
  std::printf(
      "Shared graphlets: %lld, snapshots created: %lld, event-level: %lld\n",
      static_cast<long long>(engine.stats().graphlets_shared),
      static_cast<long long>(engine.stats().snapshots_created),
      static_cast<long long>(engine.stats().event_snapshots));
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
