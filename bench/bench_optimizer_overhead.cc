// §6.2 diagnostics: optimizer overheads.
//
// The paper reports: runtime sharing decisions within 20ms per window
// (<0.2% of total), one-time static workload analysis within 81ms, 400-600
// decisions per window, and ~90% of bursts shared on workload 2.
#include <chrono>

#include "src/benchlib/harness.h"
#include "src/optimizer/plan_search.h"

namespace hamlet {
namespace {

using bench::Scale;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Run() {
  // (1) Static workload analysis latency vs workload size.
  {
    Table table({"queries", "analysis_time", "exec_queries", "share_groups"});
    for (int k : {10, 25, 50, 100}) {
      const double t0 = NowSeconds();
      BenchWorkload bw = MakeWorkload2(k);
      const double dt = NowSeconds() - t0;
      table.AddRow({std::to_string(k), bench::Seconds(dt),
                    std::to_string(bw.plan->num_exec()),
                    std::to_string(bw.plan->share_groups.size())});
    }
    bench::PrintFigure("§6.2 static analysis",
                       "one-time workload analysis latency (paper: <=81ms)",
                       table);
  }

  // (2) Per-decision latency of the dynamic optimizer (pure plan choice).
  {
    Table table({"snapshot-introducing m", "decisions/sec", "ns/decision"});
    for (int m : {2, 8, 32, 128}) {
      PlanSearchInputs in;
      in.base.b = 120;
      in.base.n = 5000;
      in.base.g = 120;
      in.base.p = 2;
      in.base.sp = 2;
      for (int q = 0; q < m; ++q)
        in.sc_q.push_back(q % 2 == 0 ? 0.0 : 10.0 + q);
      const int iters = 200'000;
      const double t0 = NowSeconds();
      double sink = 0;
      for (int i = 0; i < iters; ++i) {
        sink += PrunedPlanSearch(in, m).cost;
      }
      const double dt = NowSeconds() - t0;
      (void)sink;
      table.AddRow({std::to_string(m),
                    bench::Eps(static_cast<double>(iters) / dt),
                    Table::Num(dt / iters * 1e9, 1)});
    }
    bench::PrintFigure("§6.2 decision latency",
                       "O(m) pruned plan search (paper: <20ms per window "
                       "across 400-600 decisions)",
                       table);
  }

  // (3) End-to-end: decisions per run, shared-burst fraction, decision
  // overhead share on workload 2.
  {
    Table table({"events/min", "decisions", "bursts", "shared%", "splits",
                 "merges", "event_snapshots"});
    for (int rate : {Scale(200, 2000), Scale(400, 4000)}) {
      BenchWorkload bw = MakeWorkload2(Scale(20, 50));
      GeneratorConfig gen;
      gen.seed = 13;
      gen.events_per_minute = rate;
      gen.duration_minutes = 20;
      gen.num_groups = 4;
      gen.burstiness = 0.992;
      gen.max_burst = 400;
      RunConfig config;
      config.kind = EngineKind::kHamletDynamic;
      RunMetrics m = bench::RunOnce(bw, gen, config);
      const double shared_pct =
          m.hamlet.bursts_total == 0
              ? 0
              : 100.0 * static_cast<double>(m.hamlet.bursts_shared) /
                    static_cast<double>(m.hamlet.bursts_total);
      table.AddRow({std::to_string(rate), std::to_string(m.decisions),
                    std::to_string(m.hamlet.bursts_total),
                    Table::Num(shared_pct, 1),
                    std::to_string(m.hamlet.splits),
                    std::to_string(m.hamlet.merges),
                    std::to_string(m.hamlet.event_snapshots)});
    }
    bench::PrintFigure("§6.2 runtime decisions",
                       "dynamic optimizer activity on workload 2", table);
  }
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
