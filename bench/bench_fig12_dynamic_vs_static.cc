// Figure 12 (a-d): dynamic versus static sharing decisions (Stock data).
//
// Workload 2 is diverse (windows 5-20 min, mixed aggregates, predicates on
// several types, ~120-event bursts). The static optimizer decides at compile
// time to share everything; under predicate-driven snapshot churn this
// "does more harm than good" (paper §6.2). HAMLET's dynamic optimizer
// re-decides per burst, sharing only when the Eq. 8 benefit is positive —
// the paper reports 21-34% latency speed-up and 27-52% throughput gain, and
// ~90% of bursts shared.
#include "src/benchlib/harness.h"

namespace hamlet {
namespace {

using bench::Scale;

GeneratorConfig GenFor(int rate) {
  GeneratorConfig gen;
  gen.seed = 13;
  gen.events_per_minute = rate;
  gen.duration_minutes = 20;  // one full cycle of the largest window
  gen.num_groups = 4;
  gen.burstiness = 0.992;  // ~120-event average bursts as in the paper
  gen.max_burst = 400;
  return gen;
}

void Run() {
  // (a)+(c): vary events per minute (paper: 2K-4K).
  {
    Table latency({"events/min", "dynamic", "static", "no-share",
                   "shared_bursts%", "snapshots_dyn", "snapshots_static"});
    Table throughput({"events/min", "dynamic", "static", "no-share"});
    for (int rate :
         {Scale(200, 2000), Scale(300, 3000), Scale(400, 4000)}) {
      BenchWorkload bw = MakeWorkload2(Scale(20, 50));
      RunConfig dyn_cfg;
      dyn_cfg.kind = EngineKind::kHamletDynamic;
      RunConfig stat_cfg;
      stat_cfg.kind = EngineKind::kHamletStatic;
      RunConfig solo_cfg;
      solo_cfg.kind = EngineKind::kHamletNoShare;
      RunMetrics d = bench::RunOnce(bw, GenFor(rate), dyn_cfg);
      RunMetrics s = bench::RunOnce(bw, GenFor(rate), stat_cfg);
      RunMetrics n = bench::RunOnce(bw, GenFor(rate), solo_cfg);
      const double shared_pct =
          d.hamlet.bursts_total == 0
              ? 0
              : 100.0 * static_cast<double>(d.hamlet.bursts_shared) /
                    static_cast<double>(d.hamlet.bursts_total);
      latency.AddRow({std::to_string(rate),
                      bench::Seconds(d.avg_latency_seconds),
                      bench::Seconds(s.avg_latency_seconds),
                      bench::Seconds(n.avg_latency_seconds),
                      Table::Num(shared_pct, 1),
                      std::to_string(d.hamlet.snapshots_created),
                      std::to_string(s.hamlet.snapshots_created)});
      throughput.AddRow({std::to_string(rate), bench::Eps(d.throughput_eps),
                         bench::Eps(s.throughput_eps),
                         bench::Eps(n.throughput_eps)});
    }
    bench::PrintFigure("Figure 12(a)",
                       "latency vs events/min (dynamic vs static, Stock)",
                       latency);
    bench::PrintFigure("Figure 12(c)",
                       "throughput vs events/min (dynamic vs static, Stock)",
                       throughput);
  }

  // (b)+(d): vary the number of queries (paper: 20-100).
  {
    Table latency({"queries", "dynamic", "static", "no-share"});
    Table throughput({"queries", "dynamic", "static", "no-share"});
    const int rate = Scale(300, 3000);
    for (int k : {20, Scale(40, 60), Scale(60, 100)}) {
      BenchWorkload bw = MakeWorkload2(k);
      RunConfig dyn_cfg;
      dyn_cfg.kind = EngineKind::kHamletDynamic;
      RunConfig stat_cfg;
      stat_cfg.kind = EngineKind::kHamletStatic;
      RunConfig solo_cfg;
      solo_cfg.kind = EngineKind::kHamletNoShare;
      RunMetrics d = bench::RunOnce(bw, GenFor(rate), dyn_cfg);
      RunMetrics s = bench::RunOnce(bw, GenFor(rate), stat_cfg);
      RunMetrics n = bench::RunOnce(bw, GenFor(rate), solo_cfg);
      latency.AddRow({std::to_string(k),
                      bench::Seconds(d.avg_latency_seconds),
                      bench::Seconds(s.avg_latency_seconds),
                      bench::Seconds(n.avg_latency_seconds)});
      throughput.AddRow({std::to_string(k), bench::Eps(d.throughput_eps),
                         bench::Eps(s.throughput_eps),
                         bench::Eps(n.throughput_eps)});
    }
    bench::PrintFigure("Figure 12(b)",
                       "latency vs #queries (dynamic vs static, Stock)",
                       latency);
    bench::PrintFigure("Figure 12(d)",
                       "throughput vs #queries (dynamic vs static, Stock)",
                       throughput);
  }
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
