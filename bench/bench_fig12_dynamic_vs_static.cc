// Figure 12 (a-e): dynamic versus static sharing decisions (Stock data).
//
// Workload 2 is diverse (windows 5-20 min, mixed aggregates, predicates on
// several types, ~120-event bursts). The static optimizer decides at compile
// time to share everything; under predicate-driven snapshot churn this
// "does more harm than good" (paper §6.2). HAMLET's dynamic optimizer
// re-decides per burst, sharing only when the Eq. 8 benefit is positive —
// the paper reports 21-34% latency speed-up and 27-52% throughput gain, and
// ~90% of bursts shared.
//
// Section (e) measures online plan re-optimization on Workload 1
// (Ridesharing, the sharing-wins regime of Figs. 9-11): a session starts
// from a stale compile-time decision (all share groups split solo) that is
// either frozen for the whole run or handed to the OnlineReoptimizer
// (RunConfig::reoptimize_every_panes), which re-runs the pruned plan search
// on live statistics at pane boundaries and re-merges the groups via a
// pane-aligned hot swap once the observed cost drifts past the threshold —
// closing most of the gap to the oracle shared plan.
//
// Pass --json to append one machine-readable `JSON: {...}` line per figure
// (CI greps these into the bench-json artifact).
#include <cstdio>
#include <string>

#include "src/benchlib/harness.h"

namespace hamlet {
namespace {

using bench::Scale;

GeneratorConfig GenFor(int rate, int minutes = 20) {
  GeneratorConfig gen;
  gen.seed = 13;
  gen.events_per_minute = rate;
  gen.duration_minutes = minutes;  // default: one full cycle of the largest
                                   // window
  gen.num_groups = 4;
  gen.burstiness = 0.992;  // ~120-event average bursts as in the paper
  gen.max_burst = 400;
  return gen;
}

/// The online column needs more than RunOnce exposes: the per-check
/// ReoptDecision log (observed vs best cost, swap detail). Same 512-event
/// batching as the harness drain loop.
struct OnlineRun {
  RunMetrics metrics;
  std::vector<ReoptDecision> log;
};

OnlineRun RunOnlineOnce(const BenchWorkload& bw,
                        const GeneratorConfig& gen_config,
                        const RunConfig& run_config,
                        std::span<const SharingOverride> initial = {}) {
  std::unique_ptr<EventCursor> cursor = bw.generator->Stream(gen_config);
  Result<std::unique_ptr<Session>> session =
      Session::Open(*bw.plan, run_config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  Session& s = *session.value();
  // A pre-stream override models a stale compile-time decision: the session
  // starts on the restricted plan, but the reoptimizer keeps the
  // UNRESTRICTED groups as its search space and can re-merge them.
  if (!initial.empty()) HAMLET_CHECK(s.ApplySharingOverrides(initial).ok());
  constexpr size_t kBatch = 512;
  EventVector batch;
  batch.reserve(kBatch);
  Event e;
  while (cursor->Next(&e)) {
    batch.push_back(e);
    if (batch.size() == kBatch) {
      HAMLET_CHECK(s.PushBatch(batch).ok());
      batch.clear();
    }
  }
  HAMLET_CHECK(s.PushBatch(batch).ok());
  OnlineRun out;
  out.metrics = s.Close().value();
  out.log = s.reopt_log();
  return out;
}

void EmitJson(const std::string& figure, const std::string& rows) {
  std::printf(
      "JSON: {\"bench\":\"fig12_dynamic_vs_static\",\"figure\":\"%s\","
      "\"rows\":[%s]}\n",
      figure.c_str(), rows.c_str());
  std::fflush(stdout);
}

void Run(bool json) {
  // (a)+(c): vary events per minute (paper: 2K-4K).
  {
    Table latency({"events/min", "dynamic", "static", "no-share",
                   "shared_bursts%", "snapshots_dyn", "snapshots_static"});
    Table throughput({"events/min", "dynamic", "static", "no-share"});
    std::string json_rows;
    for (int rate :
         {Scale(200, 2000), Scale(300, 3000), Scale(400, 4000)}) {
      BenchWorkload bw = MakeWorkload2(Scale(20, 50));
      RunConfig dyn_cfg;
      dyn_cfg.kind = EngineKind::kHamletDynamic;
      RunConfig stat_cfg;
      stat_cfg.kind = EngineKind::kHamletStatic;
      RunConfig solo_cfg;
      solo_cfg.kind = EngineKind::kHamletNoShare;
      RunMetrics d = bench::RunOnce(bw, GenFor(rate), dyn_cfg);
      RunMetrics s = bench::RunOnce(bw, GenFor(rate), stat_cfg);
      RunMetrics n = bench::RunOnce(bw, GenFor(rate), solo_cfg);
      const double shared_pct =
          d.hamlet.bursts_total == 0
              ? 0
              : 100.0 * static_cast<double>(d.hamlet.bursts_shared) /
                    static_cast<double>(d.hamlet.bursts_total);
      latency.AddRow({std::to_string(rate),
                      bench::Seconds(d.avg_latency_seconds),
                      bench::Seconds(s.avg_latency_seconds),
                      bench::Seconds(n.avg_latency_seconds),
                      Table::Num(shared_pct, 1),
                      std::to_string(d.hamlet.snapshots_created),
                      std::to_string(s.hamlet.snapshots_created)});
      throughput.AddRow({std::to_string(rate), bench::Eps(d.throughput_eps),
                         bench::Eps(s.throughput_eps),
                         bench::Eps(n.throughput_eps)});
      if (json) {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"rate\":%d,\"dynamic_latency_s\":%.6f,"
            "\"static_latency_s\":%.6f,\"noshare_latency_s\":%.6f,"
            "\"dynamic_eps\":%.1f,\"static_eps\":%.1f,\"noshare_eps\":%.1f,"
            "\"shared_bursts_pct\":%.1f}",
            json_rows.empty() ? "" : ",", rate, d.avg_latency_seconds,
            s.avg_latency_seconds, n.avg_latency_seconds, d.throughput_eps,
            s.throughput_eps, n.throughput_eps, shared_pct);
        json_rows += buf;
      }
    }
    bench::PrintFigure("Figure 12(a)",
                       "latency vs events/min (dynamic vs static, Stock)",
                       latency);
    bench::PrintFigure("Figure 12(c)",
                       "throughput vs events/min (dynamic vs static, Stock)",
                       throughput);
    if (json) EmitJson("12ac_rate_sweep", json_rows);
  }

  // (b)+(d): vary the number of queries (paper: 20-100).
  {
    Table latency({"queries", "dynamic", "static", "no-share"});
    Table throughput({"queries", "dynamic", "static", "no-share"});
    std::string json_rows;
    const int rate = Scale(300, 3000);
    for (int k : {20, Scale(40, 60), Scale(60, 100)}) {
      BenchWorkload bw = MakeWorkload2(k);
      RunConfig dyn_cfg;
      dyn_cfg.kind = EngineKind::kHamletDynamic;
      RunConfig stat_cfg;
      stat_cfg.kind = EngineKind::kHamletStatic;
      RunConfig solo_cfg;
      solo_cfg.kind = EngineKind::kHamletNoShare;
      RunMetrics d = bench::RunOnce(bw, GenFor(rate), dyn_cfg);
      RunMetrics s = bench::RunOnce(bw, GenFor(rate), stat_cfg);
      RunMetrics n = bench::RunOnce(bw, GenFor(rate), solo_cfg);
      latency.AddRow({std::to_string(k),
                      bench::Seconds(d.avg_latency_seconds),
                      bench::Seconds(s.avg_latency_seconds),
                      bench::Seconds(n.avg_latency_seconds)});
      throughput.AddRow({std::to_string(k), bench::Eps(d.throughput_eps),
                         bench::Eps(s.throughput_eps),
                         bench::Eps(n.throughput_eps)});
      if (json) {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"queries\":%d,\"dynamic_latency_s\":%.6f,"
            "\"static_latency_s\":%.6f,\"noshare_latency_s\":%.6f,"
            "\"dynamic_eps\":%.1f,\"static_eps\":%.1f,\"noshare_eps\":%.1f}",
            json_rows.empty() ? "" : ",", k, d.avg_latency_seconds,
            s.avg_latency_seconds, n.avg_latency_seconds, d.throughput_eps,
            s.throughput_eps, n.throughput_eps);
        json_rows += buf;
      }
    }
    bench::PrintFigure("Figure 12(b)",
                       "latency vs #queries (dynamic vs static, Stock)",
                       latency);
    bench::PrintFigure("Figure 12(d)",
                       "throughput vs #queries (dynamic vs static, Stock)",
                       throughput);
    if (json) EmitJson("12bd_query_sweep", json_rows);
  }

  // (e): online plan re-optimization (Workload 1, Ridesharing — the
  // sharing-wins regime of Figs. 9-11). All three runs drive the same
  // engine (kHamletStatic) over the same stream; "frozen" and "online"
  // both start from a STALE compile-time decision — every share group
  // split into solo queries, as a cold-start optimizer with no statistics
  // would leave it. Frozen never revisits that plan. Online hands it to
  // the OnlineReoptimizer (check every 2 panes, 10% drift threshold),
  // which sees the observed solo cost dwarf the best shared plan's cost
  // and re-merges the groups via a pane-aligned hot swap a few panes in —
  // closing most of the gap to "shared", the oracle compile-time plan.
  {
    Table online({"events/min", "frozen(solo)", "online", "shared(oracle)",
                  "checks", "swaps", "plan_epochs"});
    std::string json_rows;
    const Timestamp window = 10 * kMillisPerSecond;  // pane = 10 s
    for (int rate : {Scale(3000, 10'000), Scale(4500, 15'000),
                     Scale(6000, 20'000)}) {
      BenchWorkload bw = MakeWorkload1("ridesharing", Scale(20, 25), window,
                                       /*with_predicate=*/false);
      // The stale decision: keep only the first member of every potential
      // share group (Count()<2 => the group runs solo).
      std::vector<SharingOverride> solo;
      for (const ShareGroup& sg : bw.plan->share_groups) {
        SharingOverride ov;
        ov.type = sg.type;
        ov.original_members = sg.members;
        int first = -1;
        sg.members.ForEach([&](QueryId q) {
          if (first < 0) first = q;
        });
        ov.shared = QuerySet::Single(first);
        solo.push_back(ov);
      }
      GeneratorConfig gen;
      gen.seed = 7;
      gen.events_per_minute = rate;
      gen.duration_minutes = 3;  // 18 panes -> up to 8 checks
      gen.num_groups = 4;
      gen.burstiness = 0.9;
      gen.max_burst = 40;
      RunConfig frozen_cfg;
      frozen_cfg.kind = EngineKind::kHamletStatic;
      RunConfig online_cfg;
      online_cfg.kind = EngineKind::kHamletStatic;
      online_cfg.reoptimize_every_panes = 2;
      online_cfg.reoptimize_threshold = 0.1;
      RunConfig shared_cfg;
      shared_cfg.kind = EngineKind::kHamletStatic;
      RunMetrics f = RunOnlineOnce(bw, gen, frozen_cfg, solo).metrics;
      OnlineRun or_ = RunOnlineOnce(bw, gen, online_cfg, solo);
      const RunMetrics& o = or_.metrics;
      RunMetrics s = RunOnlineOnce(bw, gen, shared_cfg).metrics;
      online.AddRow({std::to_string(rate),
                     bench::Seconds(f.avg_latency_seconds),
                     bench::Seconds(o.avg_latency_seconds),
                     bench::Seconds(s.avg_latency_seconds),
                     std::to_string(o.reopt_checks),
                     std::to_string(o.reopt_swaps),
                     std::to_string(o.plan_swaps)});
      std::printf("  reopt decisions @ %d ev/min:\n", rate);
      for (const ReoptDecision& dec : or_.log) {
        std::printf("    pane %lld: observed=%.1f best=%.1f %s (%s)\n",
                    static_cast<long long>(dec.boundary), dec.observed_cost,
                    dec.best_cost, dec.swapped ? "SWAP" : "keep",
                    dec.detail.c_str());
      }
      if (json) {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"rate\":%d,\"frozen_latency_s\":%.6f,"
            "\"online_latency_s\":%.6f,\"shared_latency_s\":%.6f,"
            "\"frozen_eps\":%.1f,\"online_eps\":%.1f,\"shared_eps\":%.1f,"
            "\"reopt_checks\":%lld,\"reopt_swaps\":%lld,"
            "\"plan_swaps\":%lld}",
            json_rows.empty() ? "" : ",", rate, f.avg_latency_seconds,
            o.avg_latency_seconds, s.avg_latency_seconds, f.throughput_eps,
            o.throughput_eps, s.throughput_eps,
            static_cast<long long>(o.reopt_checks),
            static_cast<long long>(o.reopt_swaps),
            static_cast<long long>(o.plan_swaps));
        json_rows += buf;
      }
    }
    bench::PrintFigure(
        "Figure 12(e)",
        "latency: frozen stale plan vs online re-optimization (Ridesharing)",
        online);
    if (json) EmitJson("12e_online_reopt", json_rows);
  }
}

}  // namespace
}  // namespace hamlet

int main(int argc, char** argv) {
  hamlet::Run(hamlet::bench::JsonFlag(argc, argv));
  return 0;
}
