// Figure 13 (a,b): peak memory, dynamic versus static sharing (Stock).
//
// The paper reports ~25% lower memory for dynamic decisions because far
// fewer snapshots are materialised than under static always-share.
#include "src/benchlib/harness.h"

namespace hamlet {
namespace {

using bench::Scale;

GeneratorConfig GenFor(int rate) {
  GeneratorConfig gen;
  gen.seed = 13;
  gen.events_per_minute = rate;
  gen.duration_minutes = 20;
  gen.num_groups = 4;
  gen.burstiness = 0.992;
  gen.max_burst = 400;
  return gen;
}

void Run() {
  {
    Table table({"events/min", "dynamic", "static", "snapshots_dyn",
                 "snapshots_static"});
    for (int rate :
         {Scale(200, 2000), Scale(300, 3000), Scale(400, 4000)}) {
      BenchWorkload bw = MakeWorkload2(Scale(20, 50));
      RunConfig dyn_cfg;
      dyn_cfg.kind = EngineKind::kHamletDynamic;
      RunConfig stat_cfg;
      stat_cfg.kind = EngineKind::kHamletStatic;
      RunMetrics d = bench::RunOnce(bw, GenFor(rate), dyn_cfg);
      RunMetrics s = bench::RunOnce(bw, GenFor(rate), stat_cfg);
      table.AddRow({std::to_string(rate), bench::Bytes(d.peak_memory_bytes),
                    bench::Bytes(s.peak_memory_bytes),
                    std::to_string(d.hamlet.snapshots_created),
                    std::to_string(s.hamlet.snapshots_created)});
    }
    bench::PrintFigure("Figure 13(a)",
                       "peak memory vs events/min (dynamic vs static)",
                       table);
  }
  {
    Table table({"queries", "dynamic", "static"});
    const int rate = Scale(300, 3000);
    for (int k : {20, Scale(40, 60), Scale(60, 100)}) {
      BenchWorkload bw = MakeWorkload2(k);
      RunConfig dyn_cfg;
      dyn_cfg.kind = EngineKind::kHamletDynamic;
      RunConfig stat_cfg;
      stat_cfg.kind = EngineKind::kHamletStatic;
      RunMetrics d = bench::RunOnce(bw, GenFor(rate), dyn_cfg);
      RunMetrics s = bench::RunOnce(bw, GenFor(rate), stat_cfg);
      table.AddRow({std::to_string(k), bench::Bytes(d.peak_memory_bytes),
                    bench::Bytes(s.peak_memory_bytes)});
    }
    bench::PrintFigure("Figure 13(b)",
                       "peak memory vs #queries (dynamic vs static)", table);
  }
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
