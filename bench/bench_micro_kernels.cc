// Google-benchmark micro-kernels for the hot paths: expression algebra,
// snapshot store access, GRETA per-event propagation, HAMLET shared
// propagation, the row-vs-columnar predicate pipeline, and row-vs-run
// engine propagation. These are the constants behind the paper's cost
// model terms; the row/columnar and row/run pairs are the CI guard for
// the columnar layer's speedup claims (see docs/BENCHMARKS.md).
//
// Flags: `--json` is shorthand for --benchmark_format=json (the CI
// artifact); all other arguments pass through to google-benchmark.
#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/greta/greta_engine.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/policies.h"
#include "src/plan/workload_plan.h"
#include "src/query/columnar_predicate.h"
#include "src/query/parser.h"
#include "src/stream/event_batch.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

void BM_ExprAddExpr(benchmark::State& state) {
  SnapshotStore store;
  Expr running;
  std::vector<SnapshotId> vars;
  for (int i = 0; i < state.range(0); ++i) vars.push_back(store.Create());
  for (SnapshotId v : vars) running.AddVar(v, 1.0);
  for (auto _ : state) {
    Expr node = Expr::Var(vars[0]);
    node.AddExpr(running);
    benchmark::DoNotOptimize(node.num_terms());
  }
}
BENCHMARK(BM_ExprAddExpr)->Arg(2)->Arg(8)->Arg(32);

void BM_ExprEval(benchmark::State& state) {
  SnapshotStore store;
  Expr e;
  for (int i = 0; i < state.range(0); ++i) {
    SnapshotId v = store.Create();
    store.Set(v, 0, LinAgg{.count = 1.0, .sum = 2.0, .count_e = 3.0});
    e.AddVar(v, 1.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Eval(store, 0).count);
  }
}
BENCHMARK(BM_ExprEval)->Arg(2)->Arg(8)->Arg(32);

struct EngineSetup {
  Schema schema;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<WorkloadPlan> plan;
  EventVector events;

  explicit EngineSetup(int num_events) {
    workload = std::make_unique<Workload>(&schema);
    for (const char* text :
         {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
          "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min"}) {
      HAMLET_CHECK(workload->Add(ParseQuery(text).value()).ok());
    }
    plan = std::make_unique<WorkloadPlan>(
        AnalyzeWorkload(*workload).value());
    StreamBuilder sb(&schema);
    for (int i = 0; i < num_events / 10; ++i) {
      sb.Add("A").Add("C").AddRun(8, "B");
    }
    events = sb.Take();
  }
};

void BM_GretaGraphWindow(benchmark::State& state) {
  EngineSetup setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    GretaEngine engine(setup.plan->exec_queries[0], GretaMode::kGraph);
    for (const Event& e : setup.events) engine.OnEvent(e);
    benchmark::DoNotOptimize(engine.Value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.events.size()));
}
BENCHMARK(BM_GretaGraphWindow)->Arg(100)->Arg(1000);

void BM_GretaPrefixWindow(benchmark::State& state) {
  EngineSetup setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    GretaEngine engine(setup.plan->exec_queries[0], GretaMode::kPrefixSum);
    for (const Event& e : setup.events) engine.OnEvent(e);
    benchmark::DoNotOptimize(engine.Value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.events.size()));
}
BENCHMARK(BM_GretaPrefixWindow)->Arg(100)->Arg(1000);

void BM_HamletSharedWindow(benchmark::State& state) {
  EngineSetup setup(static_cast<int>(state.range(0)));
  AlwaysSharePolicy policy;
  for (auto _ : state) {
    BatchResult r = EvalHamletBatch(*setup.plan, setup.events, &policy);
    benchmark::DoNotOptimize(r.exec_values[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.events.size()));
}
BENCHMARK(BM_HamletSharedWindow)->Arg(100)->Arg(1000);

// --------------------------------------------------------------------------
// Row vs columnar predicate pipeline. Same predicated workload, same rows;
// the row path evaluates PassesEventPredicates per event per query, the
// columnar path runs PredicateProgram::EvalBatch (one kernel pass per
// predicate over contiguous columns). CI asserts the ratio of these two
// series stays >= 2x (docs/BENCHMARKS.md).
struct PredicateSetup {
  Schema schema;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<WorkloadPlan> plan;
  EventVector rows;
  EventBatch batch;
  PredicateProgram program;

  explicit PredicateSetup(int num_events) {
    workload = std::make_unique<Workload>(&schema);
    for (const char* text :
         {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.x > 2 WITHIN 1 min",
          "RETURN SUM(B.x) PATTERN SEQ(C, B+) WHERE B.x <= 7 WITHIN 1 min"}) {
      HAMLET_CHECK(workload->Add(ParseQuery(text).value()).ok());
    }
    plan =
        std::make_unique<WorkloadPlan>(AnalyzeWorkload(*workload).value());
    StreamBuilder sb(&schema);
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> x(0.0, 10.0);
    for (int i = 0; i < num_events / 10; ++i) {
      sb.Add("A", {x(rng)}).Add("C", {x(rng)});
      for (int k = 0; k < 8; ++k) sb.Add("B", {x(rng)});
    }
    rows = sb.Take();
    batch = EventBatch::FromRows(rows, schema.num_attrs());
    program = CompilePredicateProgram(*plan).value();
  }
};

void BM_PredicateRowPath(benchmark::State& state) {
  PredicateSetup setup(static_cast<int>(state.range(0)));
  int64_t selected = 0;
  for (auto _ : state) {
    for (const Event& e : setup.rows) {
      for (const ExecQuery& q : setup.plan->exec_queries) {
        selected += PassesEventPredicates(q.event_predicates, e) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.rows.size()));
}
BENCHMARK(BM_PredicateRowPath)->Arg(1000)->Arg(10000);

void BM_PredicateColumnarKernel(benchmark::State& state) {
  PredicateSetup setup(static_cast<int>(state.range(0)));
  BatchSelection selection;
  int64_t selected = 0;
  for (auto _ : state) {
    setup.program.EvalBatch(setup.batch, &selection);
    for (const SelectionMask& m : selection.masks)
      selected += m.CountSelected();
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.rows.size()));
}
BENCHMARK(BM_PredicateColumnarKernel)->Arg(1000)->Arg(10000);

// Masked aggregation given the SAME precomputed 0/1 mask: the row path's
// branchy accumulate (data-dependent branch, mispredicts on a ~50% mask)
// vs the branchless MaskedLinAggKernel.
struct MaskedAggSetup {
  std::vector<double> col;
  std::vector<uint8_t> mask01;

  explicit MaskedAggSetup(int rows) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> x(0.0, 10.0);
    col.reserve(static_cast<size_t>(rows));
    mask01.reserve(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
      double v = x(rng);
      col.push_back(v);
      mask01.push_back(v > 5.0 ? 1 : 0);
    }
  }
};

void BM_MaskedAggRowPath(benchmark::State& state) {
  MaskedAggSetup setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double count = 0.0, sum = 0.0;
    for (size_t i = 0; i < setup.col.size(); ++i) {
      if (setup.mask01[i]) {
        count += 1.0;
        sum += setup.col[i];
      }
    }
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.col.size()));
}
BENCHMARK(BM_MaskedAggRowPath)->Arg(1000)->Arg(10000);

// Row vs run propagation into the HAMLET engine: the same pre-filtered
// bursty stream, fed per event (OnEventFiltered — one lane transition,
// negation check and graphlet append per row) vs as contiguous runs
// (OnRunFiltered — transitions hoisted to the run head, node-free fast
// appends for the tail). CI asserts run >= row on this pair; the stream's
// 8-long B bursts are the shape the run path is built for.
struct PropagationSetup : EngineSetup {
  EventBatch batch;
  std::vector<RunSpan> runs;
  QuerySet all;

  explicit PropagationSetup(int num_events) : EngineSetup(num_events) {
    batch = EventBatch::FromRows(events, schema.num_attrs());
    all = QuerySet::FirstN(plan->num_exec());
    SegmentRuns(batch, batch.size(), /*pane_size=*/0, all,
                /*predicated_queries=*/{}, /*masks=*/{}, &runs);
  }
};

template <typename FeedFn>
void RunPropagationBench(benchmark::State& state, PropagationSetup& setup,
                         FeedFn&& feed) {
  AlwaysSharePolicy policy;
  const Timestamp start = setup.events.front().time;
  const Timestamp end = setup.events.back().time + 1;
  for (auto _ : state) {
    HamletEngine engine(*setup.plan, setup.all, &policy);
    for (int e = 0; e < setup.plan->num_exec(); ++e)
      engine.OpenContext(e, start, end);
    engine.OnPaneStart(start);
    feed(engine);
    engine.OnPaneEnd();
    benchmark::DoNotOptimize(engine.stats().events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.events.size()));
}

void BM_RowPropagation(benchmark::State& state) {
  PropagationSetup setup(static_cast<int>(state.range(0)));
  RunPropagationBench(state, setup, [&](HamletEngine& engine) {
    for (const Event& e : setup.events) engine.OnEventFiltered(e, setup.all);
  });
}
BENCHMARK(BM_RowPropagation)->Arg(1000)->Arg(10000);

void BM_RunPropagation(benchmark::State& state) {
  PropagationSetup setup(static_cast<int>(state.range(0)));
  RunPropagationBench(state, setup, [&](HamletEngine& engine) {
    for (const RunSpan& r : setup.runs) engine.OnRunFiltered(setup.batch, r);
  });
}
BENCHMARK(BM_RunPropagation)->Arg(1000)->Arg(10000);

void BM_MaskedAggColumnarKernel(benchmark::State& state) {
  MaskedAggSetup setup(static_cast<int>(state.range(0)));
  const int rows = static_cast<int>(setup.col.size());
  for (auto _ : state) {
    double count = 0.0, sum = 0.0;
    MaskedLinAggKernel(setup.col.data(), setup.mask01.data(), rows, &count,
                       &sum);
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.col.size()));
}
BENCHMARK(BM_MaskedAggColumnarKernel)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace hamlet

// Custom main: rewrite `--json` to google-benchmark's spelling, then
// delegate. Keeps the CI invocation consistent with the figure benches
// (which also take `--json`).
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string json_flag = "--benchmark_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.push_back(json_flag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
