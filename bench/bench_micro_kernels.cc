// Google-benchmark micro-kernels for the hot paths: expression algebra,
// snapshot store access, GRETA per-event propagation, HAMLET shared
// propagation. These are the constants behind the paper's cost model terms.
#include <benchmark/benchmark.h>

#include "src/greta/greta_engine.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/policies.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

void BM_ExprAddExpr(benchmark::State& state) {
  SnapshotStore store;
  Expr running;
  std::vector<SnapshotId> vars;
  for (int i = 0; i < state.range(0); ++i) vars.push_back(store.Create());
  for (SnapshotId v : vars) running.AddVar(v, 1.0);
  for (auto _ : state) {
    Expr node = Expr::Var(vars[0]);
    node.AddExpr(running);
    benchmark::DoNotOptimize(node.num_terms());
  }
}
BENCHMARK(BM_ExprAddExpr)->Arg(2)->Arg(8)->Arg(32);

void BM_ExprEval(benchmark::State& state) {
  SnapshotStore store;
  Expr e;
  for (int i = 0; i < state.range(0); ++i) {
    SnapshotId v = store.Create();
    store.Set(v, 0, LinAgg{.count = 1.0, .sum = 2.0, .count_e = 3.0});
    e.AddVar(v, 1.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Eval(store, 0).count);
  }
}
BENCHMARK(BM_ExprEval)->Arg(2)->Arg(8)->Arg(32);

struct EngineSetup {
  Schema schema;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<WorkloadPlan> plan;
  EventVector events;

  explicit EngineSetup(int num_events) {
    workload = std::make_unique<Workload>(&schema);
    for (const char* text :
         {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
          "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min"}) {
      HAMLET_CHECK(workload->Add(ParseQuery(text).value()).ok());
    }
    plan = std::make_unique<WorkloadPlan>(
        AnalyzeWorkload(*workload).value());
    StreamBuilder sb(&schema);
    for (int i = 0; i < num_events / 10; ++i) {
      sb.Add("A").Add("C").AddRun(8, "B");
    }
    events = sb.Take();
  }
};

void BM_GretaGraphWindow(benchmark::State& state) {
  EngineSetup setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    GretaEngine engine(setup.plan->exec_queries[0], GretaMode::kGraph);
    for (const Event& e : setup.events) engine.OnEvent(e);
    benchmark::DoNotOptimize(engine.Value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.events.size()));
}
BENCHMARK(BM_GretaGraphWindow)->Arg(100)->Arg(1000);

void BM_GretaPrefixWindow(benchmark::State& state) {
  EngineSetup setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    GretaEngine engine(setup.plan->exec_queries[0], GretaMode::kPrefixSum);
    for (const Event& e : setup.events) engine.OnEvent(e);
    benchmark::DoNotOptimize(engine.Value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.events.size()));
}
BENCHMARK(BM_GretaPrefixWindow)->Arg(100)->Arg(1000);

void BM_HamletSharedWindow(benchmark::State& state) {
  EngineSetup setup(static_cast<int>(state.range(0)));
  AlwaysSharePolicy policy;
  for (auto _ : state) {
    BatchResult r = EvalHamletBatch(*setup.plan, setup.events, &policy);
    benchmark::DoNotOptimize(r.exec_values[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.events.size()));
}
BENCHMARK(BM_HamletSharedWindow)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace hamlet

BENCHMARK_MAIN();
