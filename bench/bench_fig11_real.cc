// Figure 11 (a-h): HAMLET versus GRETA on the two real-data simulations
// (NYC taxi and Smart Home): latency / throughput / memory vs events/min,
// and latency / throughput vs #queries.
//
// This is the paper's "full potential" setting: long bursts, larger windows
// and workloads, where GRETA's per-query replication and quadratic
// predecessor scans dominate and HAMLET's shared propagation wins by orders
// of magnitude.
#include "src/benchlib/harness.h"

namespace hamlet {
namespace {

using bench::Scale;

struct DataSet {
  const char* name;
  const char* figure_suffix;
};

void Run() {
  const Timestamp window = 1 * kMillisPerMinute;
  const DataSet datasets[] = {{"nyc_taxi", "NYC"}, {"smart_home", "SH"}};
  auto gen_for = [](int rate) {
    GeneratorConfig gen;
    gen.seed = 11;
    gen.events_per_minute = rate;
    gen.duration_minutes = 2;
    gen.num_groups = 4;
    gen.burstiness = 0.9;  // long GPS/measurement runs
    gen.max_burst = 120;
    return gen;
  };
  const int rates[] = {Scale(2000, 5'000), Scale(4000, 10'000),
                       Scale(8000, 20'000)};
  const int k_default = Scale(20, 50);

  for (const DataSet& ds : datasets) {
    Table latency({"events/min", "hamlet", "greta"});
    Table throughput({"events/min", "hamlet", "greta"});
    Table memory({"events/min", "hamlet", "greta"});
    for (int rate : rates) {
      BenchWorkload bw = MakeWorkload1(ds.name, k_default, window);
      RunConfig hamlet_cfg;
      hamlet_cfg.kind = EngineKind::kHamletDynamic;
      RunConfig greta_cfg;
      greta_cfg.kind = EngineKind::kGretaGraph;
      RunMetrics h = bench::RunOnce(bw, gen_for(rate), hamlet_cfg);
      RunMetrics g = bench::RunOnce(bw, gen_for(rate), greta_cfg);
      latency.AddRow({std::to_string(rate),
                      bench::Seconds(h.avg_latency_seconds),
                      bench::Seconds(g.avg_latency_seconds)});
      throughput.AddRow({std::to_string(rate), bench::Eps(h.throughput_eps),
                         bench::Eps(g.throughput_eps)});
      memory.AddRow({std::to_string(rate),
                     bench::Bytes(h.peak_memory_bytes),
                     bench::Bytes(g.peak_memory_bytes)});
    }
    bench::PrintFigure(std::string("Figure 11(latency ") + ds.figure_suffix +
                           ")",
                       "latency vs events/min", latency);
    bench::PrintFigure(std::string("Figure 11(throughput ") +
                           ds.figure_suffix + ")",
                       "throughput vs events/min", throughput);
    bench::PrintFigure(std::string("Figure 11(memory ") + ds.figure_suffix +
                           ")",
                       "peak memory vs events/min", memory);
  }

  // (g,h): vary the number of queries on NYC at a fixed rate.
  {
    Table latency({"queries", "hamlet", "greta"});
    Table throughput({"queries", "hamlet", "greta"});
    const int rate = Scale(4000, 10'000);
    for (int k : {10, 20, 30, Scale(40, 50)}) {
      BenchWorkload bw = MakeWorkload1("nyc_taxi", k, window);
      RunConfig hamlet_cfg;
      hamlet_cfg.kind = EngineKind::kHamletDynamic;
      RunConfig greta_cfg;
      greta_cfg.kind = EngineKind::kGretaGraph;
      RunMetrics h = bench::RunOnce(bw, gen_for(rate), hamlet_cfg);
      RunMetrics g = bench::RunOnce(bw, gen_for(rate), greta_cfg);
      latency.AddRow({std::to_string(k),
                      bench::Seconds(h.avg_latency_seconds),
                      bench::Seconds(g.avg_latency_seconds)});
      throughput.AddRow({std::to_string(k), bench::Eps(h.throughput_eps),
                         bench::Eps(g.throughput_eps)});
    }
    bench::PrintFigure("Figure 11(g)", "latency vs #queries (NYC)", latency);
    bench::PrintFigure("Figure 11(h)", "throughput vs #queries (NYC)",
                       throughput);
  }
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
