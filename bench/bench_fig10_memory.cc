// Figure 10 (a,b): peak memory versus events/min and #queries
// (Ridesharing, all four approaches).
//
// The paper's finding: HAMLET, GRETA and MCEP are comparable, while SHARON
// needs orders of magnitude more memory (flattened per-length aggregate
// state across its expanded fixed-length query workload).
#include "src/benchlib/harness.h"

namespace hamlet {
namespace {

using bench::Scale;

void Run() {
  const Timestamp window = 10 * kMillisPerSecond;
  const EngineKind kinds[] = {EngineKind::kHamletDynamic,
                              EngineKind::kGretaGraph, EngineKind::kTwoStep,
                              EngineKind::kSharon};
  auto gen_for = [](int rate) {
    GeneratorConfig gen;
    gen.seed = 7;
    gen.events_per_minute = rate;
    gen.duration_minutes = 1;
    gen.num_groups = 4;
    gen.burstiness = 0.9;
    gen.max_burst = 40;
    return gen;
  };
  auto config_for = [](EngineKind kind) {
    RunConfig config;
    config.kind = kind;
    // SHARON provisions for the longest possible match per the paper; the
    // flattened state is what Figure 10 measures.
    config.sharon_max_length = 64;
    config.two_step_budget = 2'000'000;
    return config;
  };

  {
    Table table({"events/min", "hamlet", "greta", "mcep(two-step)", "sharon"});
    for (int rate : {Scale(3000, 10'000), Scale(4500, 15'000),
                     Scale(6000, 20'000)}) {
      BenchWorkload bw = MakeWorkload1("ridesharing", 10, window, /*with_predicate=*/true);
      std::vector<std::string> row = {std::to_string(rate)};
      for (EngineKind kind : kinds) {
        RunMetrics m = bench::RunOnce(bw, gen_for(rate), config_for(kind));
        row.push_back(bench::Bytes(m.peak_memory_bytes));
      }
      table.AddRow(row);
    }
    bench::PrintFigure("Figure 10(a)", "peak memory vs events/min", table);
  }
  {
    Table table({"queries", "hamlet", "greta", "mcep(two-step)", "sharon"});
    const int rate = Scale(4500, 15'000);
    for (int k : {5, 10, 15, 20, 25}) {
      BenchWorkload bw = MakeWorkload1("ridesharing", k, window, /*with_predicate=*/true);
      std::vector<std::string> row = {std::to_string(k)};
      for (EngineKind kind : kinds) {
        RunMetrics m = bench::RunOnce(bw, gen_for(rate), config_for(kind));
        row.push_back(bench::Bytes(m.peak_memory_bytes));
      }
      table.AddRow(row);
    }
    bench::PrintFigure("Figure 10(b)", "peak memory vs #queries", table);
  }
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
