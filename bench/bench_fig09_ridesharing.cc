// Figure 9 (a-d): HAMLET versus state-of-the-art approaches (Ridesharing).
//
// Latency and throughput, varying (a,c) events/minute and (b,d) the number
// of queries, for HAMLET, GRETA, SHARON-style flattening and the MCEP-style
// two-step baseline. The paper uses 10K-20K events/min and 5-25 queries in
// this "low setting" chosen so that the slower baselines terminate; the fast
// default scales rates down (HAMLET_BENCH_SCALE=full restores them) and
// bounds burst lengths so two-step construction stays feasible, as the
// paper's setting does.
#include "src/benchlib/harness.h"

namespace hamlet {
namespace {

using bench::Scale;

RunConfig ConfigFor(EngineKind kind) {
  RunConfig config;
  config.kind = kind;
  config.sharon_max_length = 48;
  config.two_step_budget = 2'000'000;
  return config;
}

GeneratorConfig GenFor(int events_per_min, uint64_t seed) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.events_per_minute = events_per_min;
  gen.duration_minutes = 1;
  gen.num_groups = 4;
  // Keep same-type runs short enough that two-step trend construction
  // terminates (the paper's low setting plays the same role).
  gen.burstiness = 0.9;
  gen.max_burst = 40;
  return gen;
}

void Run() {
  const Timestamp window = 10 * kMillisPerSecond;
  const EngineKind kinds[] = {EngineKind::kHamletDynamic,
                              EngineKind::kGretaGraph, EngineKind::kTwoStep,
                              EngineKind::kSharon};

  // (a)+(c): vary events per minute at fixed workload size.
  {
    Table latency({"events/min", "hamlet", "greta", "mcep(two-step)",
                   "sharon"});
    Table throughput({"events/min", "hamlet", "greta", "mcep(two-step)",
                      "sharon"});
    const int rates[] = {Scale(3000, 10'000), Scale(4500, 15'000),
                         Scale(6000, 20'000)};
    for (int rate : rates) {
      BenchWorkload bw = MakeWorkload1("ridesharing", 10, window, /*with_predicate=*/true);
      std::vector<std::string> lat_row = {std::to_string(rate)};
      std::vector<std::string> thr_row = {std::to_string(rate)};
      for (EngineKind kind : kinds) {
        RunMetrics m = bench::RunOnce(bw, GenFor(rate, 7), ConfigFor(kind));
        lat_row.push_back(m.dnf_windows > 0 ? "DNF"
                                            : bench::Seconds(
                                                  m.avg_latency_seconds));
        thr_row.push_back(m.dnf_windows > 0 ? "DNF"
                                            : bench::Eps(m.throughput_eps));
      }
      latency.AddRow(lat_row);
      throughput.AddRow(thr_row);
    }
    bench::PrintFigure("Figure 9(a)", "latency vs events/min (Ridesharing)",
                       latency);
    bench::PrintFigure("Figure 9(c)",
                       "throughput vs events/min (Ridesharing)", throughput);
  }

  // (b)+(d): vary the number of queries at fixed rate.
  {
    Table latency({"queries", "hamlet", "greta", "mcep(two-step)", "sharon"});
    Table throughput({"queries", "hamlet", "greta", "mcep(two-step)",
                      "sharon"});
    const int rate = Scale(4500, 15'000);
    for (int k : {5, 10, 15, 20, 25}) {
      BenchWorkload bw = MakeWorkload1("ridesharing", k, window, /*with_predicate=*/true);
      std::vector<std::string> lat_row = {std::to_string(k)};
      std::vector<std::string> thr_row = {std::to_string(k)};
      for (EngineKind kind : kinds) {
        RunMetrics m = bench::RunOnce(bw, GenFor(rate, 7), ConfigFor(kind));
        lat_row.push_back(m.dnf_windows > 0 ? "DNF"
                                            : bench::Seconds(
                                                  m.avg_latency_seconds));
        thr_row.push_back(m.dnf_windows > 0 ? "DNF"
                                            : bench::Eps(m.throughput_eps));
      }
      latency.AddRow(lat_row);
      throughput.AddRow(thr_row);
    }
    bench::PrintFigure("Figure 9(b)", "latency vs #queries (Ridesharing)",
                       latency);
    bench::PrintFigure("Figure 9(d)", "throughput vs #queries (Ridesharing)",
                       throughput);
  }
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
