// Ablations for the design choices called out in DESIGN.md §6:
//  (1) GRETA graph mode vs prefix-sum mode (how much of HAMLET's win
//      survives against a tuned non-shared baseline);
//  (2) sharing-decision granularity: dynamic per-burst vs static-always vs
//      never (the non-shared floor);
//  (3) cost-model variant: Definition 11 (simple) vs Definition 12
//      (refined) steering the dynamic optimizer.
#include "src/benchlib/harness.h"

namespace hamlet {
namespace {

using bench::Scale;

void Run() {
  // (1) GRETA graph vs prefix-sum vs HAMLET on workload 1.
  {
    Table table({"events/min", "hamlet", "greta_graph", "greta_prefix"});
    const Timestamp window = 30 * kMillisPerSecond;
    for (int rate : {Scale(1000, 10'000), Scale(2000, 20'000)}) {
      BenchWorkload bw = MakeWorkload1("ridesharing", 10, window);
      GeneratorConfig gen;
      gen.seed = 3;
      gen.events_per_minute = rate;
      gen.duration_minutes = 1;
      gen.num_groups = 4;
      gen.burstiness = 0.9;
      gen.max_burst = 120;
      RunConfig h;
      h.kind = EngineKind::kHamletDynamic;
      RunConfig gg;
      gg.kind = EngineKind::kGretaGraph;
      RunConfig gp;
      gp.kind = EngineKind::kGretaPrefix;
      table.AddRow({std::to_string(rate),
                    bench::Eps(bench::RunOnce(bw, gen, h).throughput_eps),
                    bench::Eps(bench::RunOnce(bw, gen, gg).throughput_eps),
                    bench::Eps(bench::RunOnce(bw, gen, gp).throughput_eps)});
    }
    bench::PrintFigure("Ablation 1", "baseline tuning: graph vs prefix-sum",
                       table);
  }

  // (2) Decision granularity on workload 2.
  {
    Table table({"policy", "latency", "throughput", "memory", "snapshots"});
    BenchWorkload bw = MakeWorkload2(Scale(20, 50));
    GeneratorConfig gen;
    gen.seed = 13;
    gen.events_per_minute = Scale(300, 3000);
    gen.duration_minutes = 20;
    gen.num_groups = 4;
    gen.burstiness = 0.992;
    gen.max_burst = 400;
    for (EngineKind kind :
         {EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
          EngineKind::kHamletNoShare}) {
      RunConfig config;
      config.kind = kind;
      RunMetrics m = bench::RunOnce(bw, gen, config);
      table.AddRow({EngineKindName(kind),
                    bench::Seconds(m.avg_latency_seconds),
                    bench::Eps(m.throughput_eps),
                    bench::Bytes(m.peak_memory_bytes),
                    std::to_string(m.hamlet.snapshots_created)});
    }
    bench::PrintFigure("Ablation 2", "decision granularity (workload 2)",
                       table);
  }

  // (3) Cost-model variant steering the dynamic policy.
  {
    Table table({"variant", "latency", "throughput", "shared%"});
    BenchWorkload bw = MakeWorkload2(Scale(20, 50));
    GeneratorConfig gen;
    gen.seed = 13;
    gen.events_per_minute = Scale(300, 3000);
    gen.duration_minutes = 20;
    gen.num_groups = 4;
    gen.burstiness = 0.992;
    gen.max_burst = 400;
    for (CostModelVariant variant :
         {CostModelVariant::kRefined, CostModelVariant::kSimple}) {
      RunConfig config;
      config.kind = EngineKind::kHamletDynamic;
      config.cost_variant = variant;
      RunMetrics m = bench::RunOnce(bw, gen, config);
      const double shared_pct =
          m.hamlet.bursts_total == 0
              ? 0
              : 100.0 * static_cast<double>(m.hamlet.bursts_shared) /
                    static_cast<double>(m.hamlet.bursts_total);
      table.AddRow({variant == CostModelVariant::kRefined ? "refined(Def12)"
                                                          : "simple(Def11)",
                    bench::Seconds(m.avg_latency_seconds),
                    bench::Eps(m.throughput_eps), Table::Num(shared_pct, 1)});
    }
    bench::PrintFigure("Ablation 3", "cost-model variant (workload 2)",
                       table);
  }
}

}  // namespace
}  // namespace hamlet

int main() {
  hamlet::Run();
  return 0;
}
