// Ridesharing monitor: the paper's Figure 1 scenario.
//
// Three trip-statistics queries over a ridesharing stream share the
// expensive Travel+ Kleene sub-pattern; HAMLET decides per burst whether
// sharing pays off. Compares the dynamic executor against non-shared GRETA
// on the same stream.
#include <cstdio>

#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/stream/generators.h"

int main() {
  using namespace hamlet;

  RidesharingGenerator generator;
  Schema* schema = const_cast<Schema*>(&generator.schema());
  Workload workload(schema);

  // Figure 1, adapted to the linear-pattern core (one type per pattern):
  //  q1: trips where the driver travels after a request (trend count),
  //  q2: pooled trips ending in a dropoff (total trip duration),
  //  q3: cancelled trips in slow traffic (average speed).
  const char* queries[] = {
      "RETURN COUNT(*) PATTERN SEQ(Request, Travel+, NOT Pickup, Cancel) "
      "GROUPBY district WITHIN 2 min",
      "RETURN SUM(Travel.duration) PATTERN SEQ(Pool, Travel+, Dropoff) "
      "GROUPBY district WITHIN 2 min",
      "RETURN COUNT(*) PATTERN SEQ(Accept, Travel+, Cancel) "
      "WHERE Travel.speed < 10 GROUPBY district WITHIN 2 min",
  };
  for (const char* text : queries) {
    Result<Query> q = ParseQuery(text);
    HAMLET_CHECK(q.ok());
    HAMLET_CHECK(workload.Add(q.value()).ok());
  }
  Result<WorkloadPlan> plan = AnalyzeWorkload(workload);
  HAMLET_CHECK(plan.ok());
  std::printf("%s\n", plan->Describe().c_str());
  std::printf("Merged workload template:\n%s\n",
              plan->merged.ToString(*schema).c_str());

  GeneratorConfig gen;
  gen.seed = 2021;
  gen.events_per_minute = 4000;
  gen.duration_minutes = 4;
  gen.num_groups = 4;
  gen.burstiness = 0.9;
  EventVector events = generator.Generate(gen);

  for (EngineKind kind : {EngineKind::kHamletDynamic,
                          EngineKind::kGretaGraph}) {
    RunConfig config;
    config.kind = kind;
    config.collect_emissions = false;
    StreamExecutor executor(*plan, config);
    RunOutput out = executor.Run(events);
    std::printf(
        "%-14s: %8.0f events/s, avg latency %.3f ms, peak memory %lld KB\n",
        EngineKindName(kind), out.metrics.throughput_eps,
        out.metrics.avg_latency_seconds * 1e3,
        static_cast<long long>(out.metrics.peak_memory_bytes / 1024));
    if (kind == EngineKind::kHamletDynamic) {
      std::printf(
          "                %lld/%lld bursts shared, %lld snapshots "
          "(%lld event-level), %lld splits, %lld merges\n",
          static_cast<long long>(out.metrics.hamlet.bursts_shared),
          static_cast<long long>(out.metrics.hamlet.bursts_total),
          static_cast<long long>(out.metrics.hamlet.snapshots_created),
          static_cast<long long>(out.metrics.hamlet.event_snapshots),
          static_cast<long long>(out.metrics.hamlet.splits),
          static_cast<long long>(out.metrics.hamlet.merges));
    }
  }
  return 0;
}
