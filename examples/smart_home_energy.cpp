// Smart-home energy analytics: AVG-family sharing (paper §3.1).
//
// AVG(Load.value) decomposes into SUM and COUNT, so queries computing
// AVG / SUM / COUNT over the same Kleene sub-pattern Load+ form one share
// group even though their RETURN clauses differ. The example prints the
// share groups the analyzer derives and a per-house result sample.
#include <cstdio>

#include "src/query/parser.h"
#include "src/runtime/session.h"
#include "src/stream/generators.h"

int main() {
  using namespace hamlet;

  SmartHomeGenerator generator;
  Schema* schema = const_cast<Schema*>(&generator.schema());
  Workload workload(schema);
  const char* queries[] = {
      // One share group: the AVG family over Load.value.
      "RETURN AVG(Load.value) PATTERN SEQ(Switch, Load+) GROUPBY house "
      "WITHIN 1 min",
      "RETURN SUM(Load.value) PATTERN SEQ(Work, Load+) GROUPBY house "
      "WITHIN 1 min",
      "RETURN COUNT(Load) PATTERN SEQ(Spike, Load+) GROUPBY house WITHIN 1 "
      "min",
      // A separate group: MAX shares only with identical functions.
      "RETURN MAX(Load.value) PATTERN SEQ(Idle, Load+) GROUPBY house WITHIN "
      "1 min",
      "RETURN MAX(Load.value) PATTERN SEQ(Work, Load+, Spike) GROUPBY house "
      "WITHIN 1 min",
  };
  for (const char* text : queries) {
    Result<Query> q = ParseQuery(text);
    HAMLET_CHECK(q.ok());
    HAMLET_CHECK(workload.Add(q.value()).ok());
  }
  Result<WorkloadPlan> plan = AnalyzeWorkload(workload);
  HAMLET_CHECK(plan.ok());
  std::printf("%s\n", plan->Describe().c_str());

  GeneratorConfig gen;
  gen.seed = 14;
  gen.events_per_minute = 3000;
  gen.duration_minutes = 2;
  gen.num_groups = 3;  // houses

  // Stream the generator straight into a push Session — no event buffer.
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  CollectingSink sink;
  Result<std::unique_ptr<Session>> session =
      Session::Open(*plan, config, &sink);
  HAMLET_CHECK(session.ok());
  std::unique_ptr<EventCursor> cursor = generator.Stream(gen);
  Event e;
  while (cursor->Next(&e)) HAMLET_CHECK(session.value()->Push(e).ok());
  RunMetrics metrics = session.value()->Close().value();

  std::printf("sample results (first window per house):\n");
  int printed = 0;
  for (const Emission& em : sink.Take()) {
    if (em.window_start > 0) break;
    std::printf("  %s house=%lld -> %.2f\n", em.query_name.c_str(),
                static_cast<long long>(em.group_key), em.value);
    if (++printed >= 15) break;
  }
  std::printf(
      "\n%lld emissions, %lld/%lld bursts shared, throughput %.0f "
      "events/s\n",
      static_cast<long long>(metrics.emissions),
      static_cast<long long>(metrics.hamlet.bursts_shared),
      static_cast<long long>(metrics.hamlet.bursts_total),
      metrics.throughput_eps);
  return 0;
}
