// Quickstart: parse two trend-aggregation queries that share a Kleene
// sub-pattern, push a hand-built stream through a Session, and print the
// per-window results alongside the sharing plan HAMLET chose.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "src/query/parser.h"
#include "src/runtime/session.h"
#include "src/stream/stream_builder.h"

int main() {
  using namespace hamlet;

  // 1. A schema and a workload of two queries sharing B+ (paper Fig. 3(b)).
  Schema schema;
  Workload workload(&schema);
  for (const char* text : {
           "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 100 ms",
           "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 100 ms",
       }) {
    Result<Query> query = ParseQuery(text);
    if (!query.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    Result<QueryId> id = workload.Add(query.value());
    if (!id.ok()) {
      std::fprintf(stderr, "workload error: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }

  // 2. Compile: templates, shareable Kleene sub-patterns, panes.
  Result<WorkloadPlan> plan = AnalyzeWorkload(workload);
  if (!plan.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", plan->Describe().c_str());

  // 3. A small stream: two windows of bursty events.
  StreamBuilder sb(&schema);
  sb.Add("A").Add("C");
  for (int i = 0; i < 4; ++i) sb.Add("B", {});
  sb.Gap(40);
  sb.Add("A");
  for (int i = 0; i < 3; ++i) sb.Add("B", {});
  EventVector events = sb.Take();

  // 4. Open a push Session (HAMLET dynamic sharing decisions per burst).
  //    A CollectingSink buffers emissions in batch-Run() order; swap in a
  //    CallbackSink to react to each window as it closes (see
  //    examples/live_dashboard.cpp).
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  CollectingSink sink;
  Result<std::unique_ptr<Session>> session =
      Session::Open(*plan, config, &sink);
  if (!session.ok()) {
    std::fprintf(stderr, "open error: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  Status pushed = session.value()->PushBatch(events);
  if (!pushed.ok()) {
    std::fprintf(stderr, "push error: %s\n", pushed.ToString().c_str());
    return 1;
  }
  RunMetrics metrics = session.value()->Close().value();

  // Emissions are self-describing (query name + window bounds).
  std::printf("results:\n");
  for (const Emission& e : sink.Take()) {
    std::printf("  %s @window [%lld, %lld) ms -> %g\n", e.query_name.c_str(),
                static_cast<long long>(e.window_start),
                static_cast<long long>(e.window_end), e.value);
  }
  std::printf(
      "\nstats: %lld events, %lld shared bursts of %lld, %lld snapshots, "
      "throughput %.0f events/s\n",
      static_cast<long long>(metrics.events),
      static_cast<long long>(metrics.hamlet.bursts_shared),
      static_cast<long long>(metrics.hamlet.bursts_total),
      static_cast<long long>(metrics.hamlet.snapshots_created),
      metrics.throughput_eps);
  return 0;
}
