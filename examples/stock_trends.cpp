// Stock trend dashboard: dynamic versus static sharing under bursty data
// (the paper's §4.2 split/merge behaviour, Figure 6).
//
// A diverse workload over Up/Down momentum runs, with predicates that make
// sharing beneficial for some bursts and harmful for others. The example
// contrasts the dynamic optimizer's split/merge activity with the static
// always-share plan.
#include <cstdio>

#include "src/benchlib/harness.h"
#include "src/benchlib/workloads.h"

int main() {
  using namespace hamlet;

  BenchWorkload bw = MakeWorkload2(/*num_queries=*/16);
  std::printf("workload 2 (stock), 16 queries:\n%s\n",
              bw.plan->Describe().c_str());

  GeneratorConfig gen;
  gen.seed = 99;
  gen.events_per_minute = 400;
  gen.duration_minutes = 20;
  gen.num_groups = 4;  // companies
  gen.burstiness = 0.992;
  gen.max_burst = 400;

  for (EngineKind kind : {EngineKind::kHamletDynamic,
                          EngineKind::kHamletStatic,
                          EngineKind::kHamletNoShare}) {
    RunConfig config;
    config.kind = kind;
    // Streams the generator through a push Session (metrics only, no
    // emission buffering) — same ingest path the figure benches use.
    RunMetrics m = bench::RunOnce(bw, gen, config);
    const double shared_pct =
        m.hamlet.bursts_total == 0
            ? 0
            : 100.0 * static_cast<double>(m.hamlet.bursts_shared) /
                  static_cast<double>(m.hamlet.bursts_total);
    std::printf(
        "%-16s: %8.0f events/s | %5.1f%% bursts shared | %6lld snapshots | "
        "%4lld splits, %4lld merges\n",
        EngineKindName(kind), m.throughput_eps, shared_pct,
        static_cast<long long>(m.hamlet.snapshots_created),
        static_cast<long long>(m.hamlet.splits),
        static_cast<long long>(m.hamlet.merges));
  }
  std::printf(
      "\nThe dynamic optimizer shares bursts only while Eq. 8's benefit is "
      "positive;\nthe static plan pays snapshot maintenance on every "
      "burst.\n");
  return 0;
}
