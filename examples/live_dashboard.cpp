// Live dashboard: push-based ingestion with incremental result delivery,
// running sharded across worker threads.
//
// Streams a bursty ridesharing feed through a hamlet::ShardedSession one
// event at a time — the shape of a production ingest loop — and prints
// every query result shortly after its window closes (no end-of-run
// buffering), plus a periodic status line with the dynamic optimizer's
// per-burst sharing decisions. The CallbackSink below is the same
// single-threaded sink a plain Session would use: the shards buffer their
// emissions and the session fans them in to the sink on THIS thread during
// Push/AdvanceTo/Close, so the sink needs no locking and may even use
// thread-locals. Delivery granularity follows the ingress batch: with
// RunConfig::adaptive_batching (used here) each shard shrinks its batch
// toward per-event hand-off whenever the feed goes quiet — dashboard lines
// appear promptly through lulls — and grows it back toward
// shard_batch_size when a burst needs amortizing. Contrast with
// examples/quickstart.cpp, which uses the batch Run() wrapper.
//
// The run also exercises the query lifecycle and the online optimizer: a
// fourth query is registered on the LIVE session mid-stream (AddQuery
// compiles a new plan epoch that activates at the next pane boundary —
// results for it appear from that boundary on, everything already running
// is unaffected), and RunConfig::reoptimize_every_panes keeps the plan
// under review — every decision the OnlineReoptimizer took (observed vs
// best cost, swap or keep) is printed at the end.
//
// Pass --threads=N to change the shard count (default 2).
#include <cstdio>

#include "src/benchlib/harness.h"
#include "src/query/parser.h"
#include "src/runtime/sharded_session.h"
#include "src/stream/generators.h"

int main(int argc, char** argv) {
  using namespace hamlet;

  const int num_shards = bench::ThreadsFlag(argc, argv, /*fallback=*/2);

  RidesharingGenerator generator;
  Schema* schema = const_cast<Schema*>(&generator.schema());
  Workload workload(schema);
  const char* queries[] = {
      "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) GROUPBY district "
      "WITHIN 10 s",
      "RETURN SUM(Travel.duration) PATTERN SEQ(Pool, Travel+, Dropoff) "
      "GROUPBY district WITHIN 10 s",
      "RETURN COUNT(*) PATTERN SEQ(Accept, Travel+, Cancel) "
      "GROUPBY district WITHIN 10 s",
  };
  for (const char* text : queries) {
    Result<Query> q = ParseQuery(text);
    HAMLET_CHECK(q.ok());
    HAMLET_CHECK(workload.Add(q.value()).ok());
  }
  Result<WorkloadPlan> plan = AnalyzeWorkload(workload);
  HAMLET_CHECK(plan.ok());
  std::printf("%s\n", plan->Describe().c_str());

  // Emissions carry the query name and window bounds, so rendering needs
  // neither the Workload nor the plan.
  CallbackSink sink([](const Emission& e) {
    std::printf("  [%6lld ms .. %6lld ms) district=%lld  %-24s -> %g\n",
                static_cast<long long>(e.window_start),
                static_cast<long long>(e.window_end),
                static_cast<long long>(e.group_key), e.query_name.c_str(),
                e.value);
  });

  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  config.num_shards = num_shards;  // validated at Open like every knob
  config.shard_batch_size = 16;    // ceiling for the adaptive controller
  config.adaptive_batching = true;  // hand-off shrinks to 1 during lulls
  config.reoptimize_every_panes = 2;  // review the plan every 20 s pane pair
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(*plan, config, &sink);
  HAMLET_CHECK(session.ok());
  std::printf("running on %d shard(s)\n", session.value()->num_shards());

  GeneratorConfig gen;
  gen.seed = 2026;
  gen.events_per_minute = 3000;
  gen.duration_minutes = 1;
  gen.num_groups = 2;
  gen.burstiness = 0.9;

  std::printf("live results (printed as each window closes):\n");
  std::unique_ptr<EventCursor> cursor = generator.Stream(gen);
  Event e;
  Timestamp next_status = 15 * kMillisPerSecond;
  bool cancel_rate_added = false;
  while (cursor->Next(&e)) {
    HAMLET_CHECK(session.value()->Push(e).ok());
    if (!cancel_rate_added && e.time >= 20 * kMillisPerSecond) {
      // Register a query on the live session: it compiles against the
      // running schema and starts emitting at the next pane boundary.
      Result<Query> q = ParseQuery(
          "RETURN COUNT(*) PATTERN SEQ(Request, Travel+, Cancel) "
          "GROUPBY district WITHIN 10 s");
      HAMLET_CHECK(q.ok());
      Query named = q.value();
      named.name = "cancel_rate";
      Result<Timestamp> at = session.value()->AddQuery(named);
      HAMLET_CHECK(at.ok());
      std::printf("  ** cancel_rate registered at t=%llds, live from %llds\n",
                  static_cast<long long>(e.time / kMillisPerSecond),
                  static_cast<long long>(at.value() / kMillisPerSecond));
      cancel_rate_added = true;
    }
    if (e.time >= next_status) {
      RunMetrics now = session.value()->MetricsSnapshot();
      std::printf(
          "  -- t=%llds: %lld events in, %lld/%lld bursts shared, "
          "%lld sharing decisions --\n",
          static_cast<long long>(e.time / kMillisPerSecond),
          static_cast<long long>(now.events),
          static_cast<long long>(now.hamlet.bursts_shared),
          static_cast<long long>(now.hamlet.bursts_total),
          static_cast<long long>(now.decisions));
      next_status += 15 * kMillisPerSecond;
    }
  }
  // The feed is drained; a watermark closes the final windows without
  // waiting for another event.
  HAMLET_CHECK(session.value()->AdvanceTo(gen.duration_minutes *
                                          kMillisPerMinute).ok());
  // Snapshot the online optimizer's decision log before Close tears the
  // session down.
  const std::vector<ReoptDecision> decisions = session.value()->reopt_log();
  RunMetrics m = session.value()->Close().value();
  std::printf(
      "\ndone: %lld events, %lld emissions, %lld/%lld bursts shared, "
      "engine throughput %.0f events/s\n",
      static_cast<long long>(m.events), static_cast<long long>(m.emissions),
      static_cast<long long>(m.hamlet.bursts_shared),
      static_cast<long long>(m.hamlet.bursts_total), m.throughput_eps);
  std::printf("re-optimization decisions (%lld checks, %lld swaps):\n",
              static_cast<long long>(m.reopt_checks),
              static_cast<long long>(m.reopt_swaps));
  for (const ReoptDecision& d : decisions) {
    std::printf("  pane %3llds: observed cost %.0f, best %.0f -> %s (%s)\n",
                static_cast<long long>(d.boundary / kMillisPerSecond),
                d.observed_cost, d.best_cost, d.swapped ? "SWAP" : "keep",
                d.detail.c_str());
  }
  return 0;
}
